package bb

import (
	"fmt"
	"time"

	"e2eqos/internal/core"
	"e2eqos/internal/envelope"
	"e2eqos/internal/identity"
	"e2eqos/internal/obs"
	"e2eqos/internal/policysrv"
	"e2eqos/internal/resv"
	"e2eqos/internal/signalling"
	"e2eqos/internal/tunnel"
	"e2eqos/internal/units"
)

// tunnelRegistry wraps the tunnel package registry.
type tunnelRegistry struct {
	reg *tunnel.Registry
}

func newTunnelRegistry() *tunnelRegistry {
	return &tunnelRegistry{reg: tunnel.NewRegistry()}
}

// Handle implements signalling.Handler: the broker's message dispatch.
func (b *BB) Handle(peer signalling.Peer, msg *signalling.Message) *signalling.Message {
	switch msg.Type {
	case signalling.MsgReserve:
		if msg.Reserve == nil {
			return signalling.ErrorResult("reserve message without payload")
		}
		return b.handleReserve(peer, msg.Reserve)
	case signalling.MsgCancel:
		if msg.Cancel == nil {
			return signalling.ErrorResult("cancel message without payload")
		}
		return b.handleCancel(peer, msg.Cancel)
	case signalling.MsgTunnelAlloc:
		if msg.TunnelAlloc == nil {
			return signalling.ErrorResult("tunnel-alloc message without payload")
		}
		return b.handleTunnelAlloc(peer, msg.TunnelAlloc)
	case signalling.MsgTunnelRelease:
		if msg.TunnelRelease == nil {
			return signalling.ErrorResult("tunnel-release message without payload")
		}
		return b.handleTunnelRelease(peer, msg.TunnelRelease)
	case signalling.MsgStatus:
		if msg.Status == nil {
			return signalling.ErrorResult("status message without payload")
		}
		return b.handleStatus(msg.Status)
	default:
		return signalling.ErrorResult(fmt.Sprintf("unsupported message type %q", msg.Type))
	}
}

// deny builds a denied result carrying this domain's signed refusal,
// implementing "Whenever a request is denied by one domain, the event
// is propagated upstream to inform the user of the reason for the
// denial."
func (b *BB) deny(rarID, reason string) *signalling.Message {
	resp := signalling.ErrorResult(reason)
	if a, err := b.signApproval(rarID, "", false, reason); err == nil {
		resp.Result.Approvals = []signalling.DomainApproval{a}
	}
	return resp
}

// finishTrace stamps this hop's span onto the response of a traced
// reserve: total time, verdict (derived from the result unless the
// processing already pinned one), and the trace id echo. Spans from
// hops below are already in the result; this hop's span goes on top,
// mirroring how approvals stack on the return path.
func finishTrace(resp *signalling.Message, span *obs.Span, traceID string, t0 time.Time) {
	if span == nil || resp == nil || resp.Result == nil {
		return
	}
	span.TotalNS = time.Since(t0).Nanoseconds()
	if span.Verdict == "" {
		if resp.Result.Granted {
			span.Verdict = obs.VerdictGranted
		} else {
			span.Verdict = obs.VerdictDenied
			span.Reason = resp.Result.Reason
		}
	}
	resp.Result.TraceID = traceID
	resp.Result.Trace = append(resp.Result.Trace, *span)
}

func (b *BB) handleReserve(peer signalling.Peer, payload *signalling.ReservePayload) *signalling.Message {
	t0 := time.Now()
	b.m.received.Inc()
	// Tracing is requester-opt-in: without a trace id no span is
	// built and the traced branches below reduce to nil checks.
	var span *obs.Span
	if payload.TraceID != "" {
		span = &obs.Span{Domain: b.cfg.Domain, BB: string(b.cfg.Key.DN)}
	}
	env, err := payload.Envelope()
	if err != nil {
		b.m.denied.Inc()
		b.log.Warn("reserve: malformed envelope", obs.AttrPeer, string(peer.DN), "err", err)
		resp := signalling.ErrorResult(fmt.Sprintf("malformed envelope: %v", err))
		finishTrace(resp, span, payload.TraceID, t0)
		return resp
	}
	now := b.cfg.Clock()
	tVerify := time.Now()
	verified, err := b.proto.Verify(env, peer.DN, peer.CertDER, now)
	if span != nil {
		span.VerifyNS = time.Since(tVerify).Nanoseconds()
	}
	if err != nil {
		b.m.denied.Inc()
		b.log.Warn("reserve: verification failed", obs.AttrPeer, string(peer.DN),
			obs.AttrTrace, payload.TraceID, "err", err)
		resp := signalling.ErrorResult(fmt.Sprintf("verification failed: %v", err))
		finishTrace(resp, span, payload.TraceID, t0)
		return resp
	}
	spec := verified.Spec

	// Duplicate RAR ids would corrupt cancellation state. A duplicate
	// is (almost always) a retransmission from an upstream hop that
	// lost the response: wait out any still-in-flight first copy, then
	// replay its outcome verbatim, so retries are idempotent
	// (re-admitting would double-book, denying a granted chain would
	// strand it). The placeholder registered for fresh RARs is what
	// lets a concurrent retransmission find the first copy.
	b.mu.Lock()
	st, dup := b.routes[spec.RARID]
	if !dup {
		b.rarEpoch++
		st = &rarState{spec: spec, done: make(chan struct{}), epoch: b.rarEpoch}
		b.routes[spec.RARID] = st
	}
	b.mu.Unlock()
	if dup {
		if st.done != nil {
			<-st.done
		}
		b.mu.Lock()
		outcome := st.outcome
		b.mu.Unlock()
		b.m.replays.Inc()
		b.log.Info("reserve: replaying recorded outcome for retransmitted RAR",
			obs.AttrRAR, spec.RARID, obs.AttrPeer, string(peer.DN), obs.AttrTrace, payload.TraceID)
		if outcome != nil {
			// The recorded outcome already carries this hop's span (and
			// everything below it), so a replay never duplicates spans.
			resp := *outcome // shallow copy: Serve stamps the per-call ID
			return &resp
		}
		return b.deny(spec.RARID, fmt.Sprintf("%s: duplicate RAR id %s", b.cfg.Domain, spec.RARID))
	}
	resp := b.processReserve(peer, payload, env, verified, now, span)
	if resp.Result != nil {
		if resp.Result.Granted {
			b.m.granted.Inc()
			if len(verified.Path) == 1 {
				// This hop is the source domain: its handle time IS the
				// end-to-end grant time the user observes.
				b.m.grantSeconds.ObserveSince(t0)
			}
		} else {
			b.m.denied.Inc()
		}
	}
	b.m.handleSeconds.ObserveSince(t0)
	// Stamp the span before recording the outcome, so replays return
	// the identical trace.
	finishTrace(resp, span, payload.TraceID, t0)
	b.logReserveVerdict(spec, payload.TraceID, resp, time.Since(t0))
	b.mu.Lock()
	st.outcome = resp
	b.mu.Unlock()
	// Journal the settled entry before releasing waiters, so a cancel
	// that was blocked on done always journals after this record.
	b.journalRAR(spec.RARID, st)
	close(st.done)
	b.maybeCheckpoint()
	return resp
}

// logReserveVerdict emits the one per-reserve log record: grants at
// info, denials (which were silent before the obs layer) at warn.
func (b *BB) logReserveVerdict(spec *core.Spec, traceID string, resp *signalling.Message, took time.Duration) {
	if resp.Result == nil {
		return
	}
	if resp.Result.Granted {
		b.log.Info("reserve granted",
			obs.AttrRAR, spec.RARID, obs.AttrTrace, traceID,
			"user", string(spec.User), "bw", spec.Bandwidth.String(),
			"dest", spec.DestDomain, "handle", resp.Result.Handle, "took", took)
		return
	}
	b.log.Warn("reserve denied",
		obs.AttrRAR, spec.RARID, obs.AttrTrace, traceID,
		"user", string(spec.User), "bw", spec.Bandwidth.String(),
		"dest", spec.DestDomain, "reason", resp.Result.Reason, "took", took)
}

// rollback cancels an optimistic local admission that must not
// survive (downstream denial, transport failure, encode error) and
// accounts for it.
func (b *BB) rollback(handle, rarID, why string) {
	_ = b.table.Cancel(handle)
	b.m.rollbacks.Inc()
	b.log.Info("reserve: rolled back local admission",
		obs.AttrRAR, rarID, "handle", handle, "why", why)
}

// processReserve runs the admission pipeline for a first-seen RAR:
// upstream SLA check, policy decision, local admission, and downstream
// forwarding. The caller records the returned message as the RAR's
// replayable outcome. span, non-nil only on traced reserves, collects
// where the hop's time went; processReserve pins span.Verdict only
// when the result alone cannot distinguish the failure mode (transport
// error vs. own denial vs. rolled-back admission).
func (b *BB) processReserve(peer signalling.Peer, payload *signalling.ReservePayload, env *envelope.Envelope, verified *core.VerifiedRequest, now time.Time, span *obs.Span) *signalling.Message {
	spec := verified.Spec

	// Identify the upstream entity. A single-layer chain came from the
	// user directly; otherwise the outermost signer is the upstream BB.
	fromUser := len(verified.Path) == 1
	if !fromUser {
		upBB := verified.Path[len(verified.Path)-1]
		upDomain, ok := b.domainOfBB(upBB)
		if !ok {
			return b.deny(spec.RARID, fmt.Sprintf("%s: unknown upstream broker %s", b.cfg.Domain, upBB))
		}
		// SLA conformance: the premium aggregate entering from the
		// upstream peer must stay inside the contracted profile.
		contract := b.cfg.InboundSLAs[upDomain]
		if contract == nil {
			return b.deny(spec.RARID, fmt.Sprintf("%s: no SLA with upstream domain %s", b.cfg.Domain, upDomain))
		}
		if !contract.Valid(now) {
			return b.deny(spec.RARID, fmt.Sprintf("%s: SLA with %s not valid", b.cfg.Domain, upDomain))
		}
		committed := b.cfg.Capacity - b.table.Available(spec.Window)
		if err := contract.Conforms(committed, spec.Bandwidth); err != nil {
			return b.deny(spec.RARID, fmt.Sprintf("%s: %v", b.cfg.Domain, err))
		}
	}

	// Consult the policy server (§5): validated assertions,
	// capability-chain verification and local policy.
	q := &policysrv.Query{
		User:               spec.User,
		Bandwidth:          spec.Bandwidth,
		Window:             spec.Window,
		Available:          b.table.Available(spec.Window),
		SourceDomain:       spec.SourceDomain,
		DestDomain:         spec.DestDomain,
		Assertions:         spec.Assertions,
		CapabilityChain:    verified.Capabilities,
		RequireRestriction: spec.RestrictionFor(),
		LinkedReservations: b.validateLinkedHandles(spec),
	}
	tPolicy := time.Now()
	res, err := b.cfg.Policy.Decide(q)
	if span != nil {
		span.PolicyNS = time.Since(tPolicy).Nanoseconds()
	}
	if err != nil {
		return b.deny(spec.RARID, fmt.Sprintf("%s: policy server: %v", b.cfg.Domain, err))
	}
	if !res.Decision.Granted() {
		return b.deny(spec.RARID, fmt.Sprintf("%s: policy denied: %s", b.cfg.Domain, res.Decision.Reason))
	}

	// Admission control against the local reservation table.
	tAdmit := time.Now()
	r, err := b.table.Admit(resv.AdmitRequest{
		User:      spec.User,
		SrcHost:   spec.SrcHost,
		DstHost:   spec.DstHost,
		Bandwidth: spec.Bandwidth,
		Window:    spec.Window,
		Tunnel:    spec.Tunnel,
	})
	if span != nil {
		span.AdmitNS = time.Since(tAdmit).Nanoseconds()
	}
	if err != nil {
		return b.deny(spec.RARID, fmt.Sprintf("%s: admission: %v", b.cfg.Domain, err))
	}

	isDest := spec.DestDomain == b.cfg.Domain
	local := payload.Mode == signalling.ModeLocal

	if isDest || local {
		return b.finishGrant(peer, verified, r, fromUser, isDest && !local)
	}

	// Forward downstream (hop-by-hop).
	nextDomain, err := b.cfg.Topo.NextHop(b.cfg.Domain, spec.DestDomain)
	if err != nil {
		b.rollback(r.Handle, spec.RARID, "no route")
		return b.deny(spec.RARID, fmt.Sprintf("%s: routing: %v", b.cfg.Domain, err))
	}
	nd, _ := b.cfg.Topo.Domain(nextDomain)
	nextCert := b.cfg.PeerCerts[nd.BBDN]
	if nextCert == nil {
		b.rollback(r.Handle, spec.RARID, "no next-hop certificate")
		return b.deny(spec.RARID, fmt.Sprintf("%s: no certificate for next hop %s", b.cfg.Domain, nd.BBDN))
	}
	extended, err := b.proto.Extend(env, peer.CertDER, verified, nextCert, res.Additions)
	if err != nil {
		b.rollback(r.Handle, spec.RARID, "extend failed")
		return b.deny(spec.RARID, fmt.Sprintf("%s: extend: %v", b.cfg.Domain, err))
	}
	fwd, err := signalling.NewReserveMessage(signalling.ModeEndToEnd, extended)
	if err != nil {
		b.rollback(r.Handle, spec.RARID, "encode failed")
		return b.deny(spec.RARID, fmt.Sprintf("%s: encode: %v", b.cfg.Domain, err))
	}
	// The trace id rides the whole chain so every hop below records a
	// span into the same trace.
	fwd.Reserve.TraceID = payload.TraceID
	b.m.forwarded.Inc()
	tDown := time.Now()
	downstream, retries, err := b.callPeer(nd.BBDN, fwd)
	b.m.downstreamSeconds.ObserveSince(tDown)
	if span != nil {
		span.DownstreamNS = time.Since(tDown).Nanoseconds()
		span.Retries = retries
	}
	if err != nil {
		// Roll back the optimistic local admission and, because the
		// downstream outcome is unknown (the hop may have admitted the
		// reservation and the response was lost), fire a best-effort
		// cancel so no hop below the failure strands bandwidth.
		b.rollback(r.Handle, spec.RARID, "downstream call failed")
		b.cancelDownstream(nd.BBDN, spec.RARID)
		if span != nil {
			span.Verdict = obs.VerdictError
			span.Reason = err.Error()
		}
		b.log.Error("reserve: downstream call failed",
			obs.AttrRAR, spec.RARID, obs.AttrPeer, string(nd.BBDN),
			obs.AttrTrace, payload.TraceID, "retries", retries, "err", err)
		return b.deny(spec.RARID, fmt.Sprintf("%s: downstream call: %v", b.cfg.Domain, err))
	}
	if downstream.Result == nil {
		b.rollback(r.Handle, spec.RARID, "downstream sent no result")
		b.cancelDownstream(nd.BBDN, spec.RARID)
		if span != nil {
			span.Verdict = obs.VerdictError
			span.Reason = "downstream sent no result"
		}
		return b.deny(spec.RARID, fmt.Sprintf("%s: downstream sent no result", b.cfg.Domain))
	}
	if !downstream.Result.Granted {
		// Roll back the optimistic local admission and propagate the
		// denial (with the downstream approvals/reasons) upstream.
		b.rollback(r.Handle, spec.RARID, "downstream denied")
		resp := signalling.ErrorResult(downstream.Result.Reason)
		resp.Result.Approvals = downstream.Result.Approvals
		resp.Result.Trace = downstream.Result.Trace
		if a, err := b.signApproval(spec.RARID, "", false, "upstream of denial"); err == nil {
			resp.Result.Approvals = append(resp.Result.Approvals, a)
		}
		if span != nil {
			// This hop did not refuse; the refusal is in a deeper span.
			span.Verdict = obs.VerdictRolledBack
		}
		return resp
	}

	// Grant: record state, configure the data plane, stack our signed
	// approval on top of the downstream ones.
	b.recordRoute(spec, r.Handle, nd.BBDN, fromUser, peer)
	if fromUser {
		// Source domain: program the per-flow edge marker.
		b.installEdgeFlow(spec)
		if spec.Tunnel {
			b.registerTunnelSource(spec, downstream.Result)
		}
	}
	b.syncDataPlane()
	resp := &signalling.Message{Type: signalling.MsgResult, Result: &signalling.ResultPayload{
		Granted:    true,
		Handle:     r.Handle,
		Approvals:  downstream.Result.Approvals,
		PolicyInfo: downstream.Result.PolicyInfo,
		Trace:      downstream.Result.Trace,
	}}
	if a, err := b.signApproval(spec.RARID, r.Handle, true, ""); err == nil {
		resp.Result.Approvals = append(resp.Result.Approvals, a)
	}
	return resp
}

// finishGrant completes a grant at the destination domain (or a
// local-mode reservation).
func (b *BB) finishGrant(peer signalling.Peer, verified *core.VerifiedRequest, r *resv.Reservation, fromUser, isDest bool) *signalling.Message {
	spec := verified.Spec
	b.recordRoute(spec, r.Handle, "", fromUser, peer)
	if fromUser {
		b.installEdgeFlow(spec)
	}
	if isDest && spec.Tunnel {
		b.registerTunnelDest(verified, peer)
	}
	b.syncDataPlane()
	resp := signalling.OKResult(r.Handle)
	if a, err := b.signApproval(spec.RARID, r.Handle, true, ""); err == nil {
		resp.Result.Approvals = []signalling.DomainApproval{a}
	}
	return resp
}

// recordRoute fills in the RAR's in-flight placeholder for
// cancellation and tunnel use. The entry itself was registered when
// the reserve arrived, so retransmissions and cancels can find it.
func (b *BB) recordRoute(spec *core.Spec, handle string, next identity.DN, fromUser bool, peer signalling.Peer) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.routes[spec.RARID]
	if !ok {
		return
	}
	st.handle = handle
	st.next = next
	st.tunnel = spec.Tunnel
	st.sourceBB = peer.DN
	st.spec = spec
	_ = fromUser
}

// validateLinkedHandles checks the co-reservation references against
// the local resource managers (destination-domain semantics of
// Figure 6: HasValidCPUResv(RAR)).
func (b *BB) validateLinkedHandles(spec *core.Spec) map[string]bool {
	out := make(map[string]bool)
	for resource, handle := range spec.LinkedHandles {
		switch resource {
		case "cpu":
			if b.cfg.CPU != nil && b.cfg.CPU.ValidDuring(handle, spec.Window) {
				out["cpu"] = true
			}
		case "disk":
			if b.cfg.Disk != nil && b.cfg.Disk.Valid(handle, spec.Window.Start) {
				out["disk"] = true
			}
		}
	}
	return out
}

func (b *BB) handleCancel(peer signalling.Peer, payload *signalling.CancelPayload) *signalling.Message {
	b.m.cancels.Inc()
	b.mu.Lock()
	st, ok := b.routes[payload.RARID]
	b.mu.Unlock()
	if !ok {
		return signalling.ErrorResult(fmt.Sprintf("%s: unknown RAR %s", b.cfg.Domain, payload.RARID))
	}
	// If the reserve that created this entry is still in flight (an
	// upstream hop gave up on it and is now cancelling), wait for it to
	// settle so its admission — and its recorded downstream hop — are
	// visible to cancel.
	if st.done != nil {
		<-st.done
	}
	b.mu.Lock()
	if cur, still := b.routes[payload.RARID]; !still || cur != st {
		b.mu.Unlock()
		return signalling.ErrorResult(fmt.Sprintf("%s: unknown RAR %s", b.cfg.Domain, payload.RARID))
	}
	delete(b.routes, payload.RARID)
	b.mu.Unlock()
	// Journal the route removal even if the table cancel below fails:
	// the entry is gone from the live map either way, and a recovered
	// broker must agree.
	b.journalRARCancel(payload.RARID, st.epoch)
	if err := b.table.Cancel(st.handle); err != nil {
		return signalling.ErrorResult(fmt.Sprintf("%s: %v", b.cfg.Domain, err))
	}
	b.removeEdgeFlow(payload.RARID)
	b.tunnels.reg.Remove(payload.RARID)
	b.syncDataPlane()
	// Propagate downstream along the recorded path (best effort, under
	// the call deadline: a dead hop must not wedge the cancel chain).
	// If the synchronous attempt fails, hand the cancel to the
	// persistent async path so hops below the failure don't stay booked.
	if st.next != "" {
		if _, _, err := b.callPeer(st.next, &signalling.Message{
			Type:   signalling.MsgCancel,
			Cancel: &signalling.CancelPayload{RARID: payload.RARID},
		}); err != nil {
			b.cancelDownstream(st.next, payload.RARID)
		}
	}
	b.log.Info("cancel: released reservation",
		obs.AttrRAR, payload.RARID, obs.AttrPeer, string(peer.DN), "handle", st.handle)
	b.maybeCheckpoint()
	return signalling.OKResult(st.handle)
}

func (b *BB) handleStatus(payload *signalling.StatusPayload) *signalling.Message {
	b.mu.Lock()
	st, ok := b.routes[payload.RARID]
	b.mu.Unlock()
	if !ok {
		return signalling.ErrorResult(fmt.Sprintf("%s: unknown RAR %s", b.cfg.Domain, payload.RARID))
	}
	r, ok := b.table.Lookup(st.handle)
	if !ok {
		return signalling.ErrorResult(fmt.Sprintf("%s: handle %s vanished", b.cfg.Domain, st.handle))
	}
	resp := signalling.OKResult(st.handle)
	resp.Result.PolicyInfo = map[string]string{
		"status":    r.Status.String(),
		"bandwidth": r.Bandwidth.String(),
		"window":    r.Window.String(),
	}
	return resp
}

// registerTunnelDest records the tunnel endpoint at the destination
// domain; the authenticated source broker (the first BB on the path)
// is the only entity allowed to drive sub-flow allocations over the
// direct channel.
func (b *BB) registerTunnelDest(verified *core.VerifiedRequest, peer signalling.Peer) {
	spec := verified.Spec
	sourceBB := peer.DN
	if len(verified.Path) > 1 {
		sourceBB = verified.Path[1] // [user, BB_src, ...]
	}
	ep, err := tunnel.NewEndpoint(spec.RARID, spec.Bandwidth, spec.Window, sourceBB, spec.User)
	if err != nil {
		return
	}
	_ = b.tunnels.reg.Add(ep)
}

// registerTunnelSource records the tunnel endpoint at the source
// domain, remembering the destination broker from the signed
// approvals so sub-flow requests can go directly to it.
func (b *BB) registerTunnelSource(spec *core.Spec, result *signalling.ResultPayload) {
	var destBB identity.DN
	for _, a := range result.Approvals {
		if a.Domain == spec.DestDomain && a.Granted {
			destBB = a.BBDN
			break
		}
	}
	ep, err := tunnel.NewEndpoint(spec.RARID, spec.Bandwidth, spec.Window, destBB, spec.User)
	if err != nil {
		return
	}
	_ = b.tunnels.reg.Add(ep)
}

func (b *BB) handleTunnelAlloc(peer signalling.Peer, payload *signalling.TunnelAllocPayload) *signalling.Message {
	ep, ok := b.tunnels.reg.Get(payload.TunnelRARID)
	if !ok {
		return signalling.ErrorResult(fmt.Sprintf("%s: no tunnel %s", b.cfg.Domain, payload.TunnelRARID))
	}
	// Only the peer broker authenticated during tunnel establishment
	// (or the tunnel owner, for the source side) may allocate.
	if peer.DN != ep.PeerBB && peer.DN != ep.Owner {
		return signalling.ErrorResult(fmt.Sprintf("%s: %s is not authorized on tunnel %s",
			b.cfg.Domain, peer.DN, payload.TunnelRARID))
	}
	if err := ep.Allocate(payload.SubFlowID, units.Bandwidth(payload.Bandwidth)); err != nil {
		return signalling.ErrorResult(err.Error())
	}
	return signalling.OKResult(payload.SubFlowID)
}

func (b *BB) handleTunnelRelease(peer signalling.Peer, payload *signalling.TunnelReleasePayload) *signalling.Message {
	ep, ok := b.tunnels.reg.Get(payload.TunnelRARID)
	if !ok {
		return signalling.ErrorResult(fmt.Sprintf("%s: no tunnel %s", b.cfg.Domain, payload.TunnelRARID))
	}
	if peer.DN != ep.PeerBB && peer.DN != ep.Owner {
		return signalling.ErrorResult(fmt.Sprintf("%s: %s is not authorized on tunnel %s",
			b.cfg.Domain, peer.DN, payload.TunnelRARID))
	}
	if err := ep.Release(payload.SubFlowID); err != nil {
		return signalling.ErrorResult(err.Error())
	}
	return signalling.OKResult(payload.SubFlowID)
}

// AllocateTunnelFlow is the source-side API: allocate a sub-flow
// locally and at the destination over the direct channel. Intermediate
// domains are not contacted.
func (b *BB) AllocateTunnelFlow(tunnelRARID, subFlowID string, bw units.Bandwidth, user identity.DN) error {
	ep, ok := b.tunnels.reg.Get(tunnelRARID)
	if !ok {
		return fmt.Errorf("bb %s: no tunnel %s", b.cfg.Domain, tunnelRARID)
	}
	if err := ep.Allocate(subFlowID, bw); err != nil {
		return err
	}
	resp, _, err := b.callPeer(ep.PeerBB, &signalling.Message{
		Type: signalling.MsgTunnelAlloc,
		TunnelAlloc: &signalling.TunnelAllocPayload{
			TunnelRARID: tunnelRARID,
			SubFlowID:   subFlowID,
			User:        user,
			Bandwidth:   int64(bw),
		},
	})
	if err != nil {
		// Roll back the local half; the destination may or may not
		// have allocated, so best-effort release there too.
		_ = ep.Release(subFlowID)
		go func() {
			if client, cerr := b.clientFor(ep.PeerBB); cerr == nil {
				_, _ = client.CallTimeout(&signalling.Message{
					Type:          signalling.MsgTunnelRelease,
					TunnelRelease: &signalling.TunnelReleasePayload{TunnelRARID: tunnelRARID, SubFlowID: subFlowID},
				}, b.cfg.CallTimeout)
			}
		}()
		return fmt.Errorf("bb %s: tunnel alloc at destination: %w", b.cfg.Domain, err)
	}
	if resp.Result == nil || !resp.Result.Granted {
		_ = ep.Release(subFlowID)
		reason := "no result"
		if resp.Result != nil {
			reason = resp.Result.Reason
		}
		return fmt.Errorf("bb %s: destination refused sub-flow: %s", b.cfg.Domain, reason)
	}
	return nil
}

// ReleaseTunnelFlow frees a sub-flow at both ends.
func (b *BB) ReleaseTunnelFlow(tunnelRARID, subFlowID string) error {
	ep, ok := b.tunnels.reg.Get(tunnelRARID)
	if !ok {
		return fmt.Errorf("bb %s: no tunnel %s", b.cfg.Domain, tunnelRARID)
	}
	if err := ep.Release(subFlowID); err != nil {
		return err
	}
	resp, _, err := b.callPeer(ep.PeerBB, &signalling.Message{
		Type:          signalling.MsgTunnelRelease,
		TunnelRelease: &signalling.TunnelReleasePayload{TunnelRARID: tunnelRARID, SubFlowID: subFlowID},
	})
	if err != nil {
		return err
	}
	if resp.Result == nil || !resp.Result.Granted {
		return fmt.Errorf("bb %s: destination refused release", b.cfg.Domain)
	}
	return nil
}

// Tunnel exposes a tunnel endpoint for inspection.
func (b *BB) Tunnel(rarID string) (*tunnel.Endpoint, bool) { return b.tunnels.reg.Get(rarID) }
