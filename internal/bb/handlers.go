package bb

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"e2eqos/internal/core"
	"e2eqos/internal/envelope"
	"e2eqos/internal/identity"
	"e2eqos/internal/obs"
	"e2eqos/internal/policysrv"
	"e2eqos/internal/resv"
	"e2eqos/internal/signalling"
	"e2eqos/internal/topology"
	"e2eqos/internal/tunnel"
	"e2eqos/internal/units"
)

// tunnelRegistry wraps the tunnel package registry and keeps the batch
// replay cache: per-batch outcomes keyed (tunnel RAR, batch id), with
// the same in-flight dedup scheme the RAR cache uses — a concurrent
// retransmission finds the first copy's placeholder and waits for its
// done channel instead of re-applying ops.
type tunnelRegistry struct {
	reg *tunnel.Registry

	mu      sync.Mutex
	batches map[string]*batchState
}

// batchState is one batch's replay-cache entry.
type batchState struct {
	// done is closed once the batch has been applied and its outcome
	// recorded; duplicates arriving mid-flight wait on it.
	done chan struct{}
	// outcome is replayed verbatim on retransmission.
	outcome *signalling.Message
	// epoch pins the entry to a specific registration of the tunnel
	// RAR id, so snapshots and teardown can tell stale entries apart.
	epoch int64
	rarID string
	id    string
}

func batchKey(rarID, batchID string) string { return rarID + "\x00" + batchID }

func newTunnelRegistry() *tunnelRegistry {
	return &tunnelRegistry{reg: tunnel.NewRegistry(), batches: make(map[string]*batchState)}
}

// begin registers a batch placeholder, or returns the existing entry
// with dup=true.
func (t *tunnelRegistry) begin(rarID, batchID string, epoch int64) (st *batchState, dup bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if st, ok := t.batches[batchKey(rarID, batchID)]; ok {
		return st, true
	}
	st = &batchState{done: make(chan struct{}), epoch: epoch, rarID: rarID, id: batchID}
	t.batches[batchKey(rarID, batchID)] = st
	return st, false
}

// settle records a batch outcome and releases any waiting duplicates.
func (t *tunnelRegistry) settle(st *batchState, outcome *signalling.Message) {
	t.mu.Lock()
	st.outcome = outcome
	t.mu.Unlock()
	close(st.done)
}

// outcomeOf reads a settled outcome (nil while in flight).
func (t *tunnelRegistry) outcomeOf(st *batchState) *signalling.Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	return st.outcome
}

// restoreBatch repopulates a replay-cache entry during journal
// recovery; done comes pre-closed because the batch settled in a
// previous life.
func (t *tunnelRegistry) restoreBatch(rarID string, epoch int64, batchID string, outcome *signalling.Message) {
	done := make(chan struct{})
	close(done)
	t.mu.Lock()
	t.batches[batchKey(rarID, batchID)] = &batchState{
		done: done, outcome: outcome, epoch: epoch, rarID: rarID, id: batchID,
	}
	t.mu.Unlock()
}

// dropBatches evicts replay-cache entries for a torn-down tunnel
// registration (matching epoch only — a re-established tunnel keeps
// its own batches).
func (t *tunnelRegistry) dropBatches(rarID string, epoch int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for k, st := range t.batches {
		if st.rarID == rarID && st.epoch == epoch {
			delete(t.batches, k)
		}
	}
}

// resetBatches replaces the whole replay cache with a snapshot's
// settled entries — a replication follower installing a leader
// snapshot. In-flight entries are discarded with it: a follower never
// has batches of its own in flight.
func (t *tunnelRegistry) resetBatches(snaps []tunnelBatchSnap) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.batches = make(map[string]*batchState, len(snaps))
	for _, bs := range snaps {
		done := make(chan struct{})
		close(done)
		t.batches[batchKey(bs.RARID, bs.BatchID)] = &batchState{
			done: done, outcome: bs.Outcome, epoch: bs.Epoch, rarID: bs.RARID, id: bs.BatchID,
		}
	}
}

// settledBatches snapshots the replay cache for journal rotation,
// sorted for deterministic bytes. In-flight entries are skipped: they
// journal themselves when they settle, after the rotation completes.
func (t *tunnelRegistry) settledBatches() []tunnelBatchSnap {
	t.mu.Lock()
	out := make([]tunnelBatchSnap, 0, len(t.batches))
	for _, st := range t.batches {
		if st.outcome == nil {
			continue
		}
		out = append(out, tunnelBatchSnap{RARID: st.rarID, Epoch: st.epoch, BatchID: st.id, Outcome: st.outcome})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].RARID != out[j].RARID {
			return out[i].RARID < out[j].RARID
		}
		return out[i].BatchID < out[j].BatchID
	})
	return out
}

// Route keys. The RAR id is user-signed, so the broker cannot mint
// fresh ids for re-route attempts or split children — instead the
// per-hop idempotency key salts the id with the unsigned attempt/split
// fields: a re-routed copy must not be mistaken for a retransmission
// at a domain two disjoint paths share. '~' is reserved as the
// separator (RAR ids come from NewRARID and never contain it).
//
//	RARID        ingress / primary attempt
//	RARID~a<n>   re-route attempt n
//	RARID~s<p>   split child p
//
// Cancels carry route keys in their (opaque) RARID field, so teardown
// follows the same identity the reserve created.
func routeKey(rarID string, p *signalling.ReservePayload) string {
	switch {
	case p.SplitPart > 0:
		return fmt.Sprintf("%s~s%d", rarID, p.SplitPart)
	case p.Attempt > 0:
		return fmt.Sprintf("%s~a%d", rarID, p.Attempt)
	default:
		return rarID
	}
}

// baseRARID strips the route-key salt: tunnel endpoints and edge flows
// are registered under the signed id, whatever key the hop holds.
func baseRARID(key string) string {
	if i := strings.IndexByte(key, '~'); i >= 0 {
		return key[:i]
	}
	return key
}

// maxPaths / splitParts resolve the multipath knobs (<=1 / <2 disable).
func (b *BB) maxPaths() int {
	if b.cfg.MaxPaths > 1 {
		return b.cfg.MaxPaths
	}
	return 1
}

func (b *BB) splitParts() int {
	if b.cfg.SplitParts >= 2 {
		return b.cfg.SplitParts
	}
	return 0
}

// Handle implements signalling.Handler: the broker's message dispatch.
// On a replica-group follower every mutating message redirects to the
// leader; status reads and replication traffic are served locally.
func (b *BB) Handle(peer signalling.Peer, msg *signalling.Message) *signalling.Message {
	if b.repl.isFollower() {
		switch msg.Type {
		case signalling.MsgReserve, signalling.MsgCancel, signalling.MsgTunnelAlloc,
			signalling.MsgTunnelRelease, signalling.MsgTunnelBatch:
			return b.redirect()
		}
	}
	switch msg.Type {
	case signalling.MsgReserve:
		if msg.Reserve == nil {
			return signalling.ErrorResult("reserve message without payload")
		}
		return b.handleReserve(peer, msg.Reserve)
	case signalling.MsgCancel:
		if msg.Cancel == nil {
			return signalling.ErrorResult("cancel message without payload")
		}
		return b.handleCancel(peer, msg.Cancel)
	case signalling.MsgTunnelAlloc:
		if msg.TunnelAlloc == nil {
			return signalling.ErrorResult("tunnel-alloc message without payload")
		}
		return b.handleTunnelAlloc(peer, msg.TunnelAlloc)
	case signalling.MsgTunnelRelease:
		if msg.TunnelRelease == nil {
			return signalling.ErrorResult("tunnel-release message without payload")
		}
		return b.handleTunnelRelease(peer, msg.TunnelRelease)
	case signalling.MsgTunnelBatch:
		if msg.TunnelBatch == nil {
			return signalling.ErrorResult("tunnel-batch message without payload")
		}
		return b.handleTunnelBatch(peer, msg.TunnelBatch)
	case signalling.MsgStatus:
		if msg.Status == nil {
			return signalling.ErrorResult("status message without payload")
		}
		return b.handleStatus(msg.Status)
	case signalling.MsgJournalStream:
		if msg.JournalStream == nil {
			return signalling.ErrorResult("journal-stream message without payload")
		}
		return b.handleJournalStream(peer, msg.JournalStream)
	default:
		return signalling.ErrorResult(fmt.Sprintf("unsupported message type %q", msg.Type))
	}
}

// deny builds a denied result carrying this domain's signed refusal,
// implementing "Whenever a request is denied by one domain, the event
// is propagated upstream to inform the user of the reason for the
// denial."
func (b *BB) deny(rarID, reason string) *signalling.Message {
	resp := signalling.ErrorResult(reason)
	if a, err := b.signApproval(rarID, "", false, reason); err == nil {
		resp.Result.Approvals = []signalling.DomainApproval{a}
	}
	return resp
}

// finishTrace stamps this hop's span onto the response of a traced
// reserve: total time, verdict (derived from the result unless the
// processing already pinned one), and the trace id echo. Spans from
// hops below are already in the result; this hop's span goes on top,
// mirroring how approvals stack on the return path.
func finishTrace(resp *signalling.Message, span *obs.Span, traceID string, t0 time.Time) {
	if span == nil || resp == nil || resp.Result == nil {
		return
	}
	span.TotalNS = time.Since(t0).Nanoseconds()
	if span.Verdict == "" {
		if resp.Result.Granted {
			span.Verdict = obs.VerdictGranted
		} else {
			span.Verdict = obs.VerdictDenied
			span.Reason = resp.Result.Reason
		}
	}
	resp.Result.TraceID = traceID
	resp.Result.Trace = append(resp.Result.Trace, *span)
}

func (b *BB) handleReserve(peer signalling.Peer, payload *signalling.ReservePayload) *signalling.Message {
	t0 := time.Now()
	b.m.received.Inc()
	// Tracing is requester-opt-in: without a trace id no span is
	// built and the traced branches below reduce to nil checks.
	var span *obs.Span
	if payload.TraceID != "" {
		span = &obs.Span{Domain: b.cfg.Domain, BB: string(b.cfg.Key.DN)}
	}
	env, err := payload.Envelope()
	if err != nil {
		b.m.denied.Inc()
		b.log.Warn("reserve: malformed envelope", obs.AttrPeer, string(peer.DN), "err", err)
		resp := signalling.ErrorResult(fmt.Sprintf("malformed envelope: %v", err))
		finishTrace(resp, span, payload.TraceID, t0)
		b.recordReserveEvent("", "", payload, resp, t0)
		return resp
	}
	now := b.cfg.Clock()
	tVerify := time.Now()
	verified, err := b.proto.Verify(env, peer.DN, peer.CertDER, now)
	verifyNS := time.Since(tVerify).Nanoseconds()
	if span != nil {
		span.VerifyNS = verifyNS
	}
	if err != nil {
		b.m.denied.Inc()
		b.log.Warn("reserve: verification failed", obs.AttrPeer, string(peer.DN),
			obs.AttrTrace, payload.TraceID, "err", err)
		resp := signalling.ErrorResult(fmt.Sprintf("verification failed: %v", err))
		finishTrace(resp, span, payload.TraceID, t0)
		b.recordReserveEvent("", "", payload, resp, t0)
		return resp
	}
	spec := verified.Spec

	// Flight-recorder sampling: only the ingress hop — the broker that
	// took the RAR from the user — rolls the dice, then the decision
	// rides the signalling payload so every hop below records the same
	// request (per-hop dice would compound the rate down the chain).
	// Sampled requests get a span even without requester opt-in tracing,
	// so the recorded event carries the full per-hop timeline; a request
	// the requester already traces keeps its trace id and just gains the
	// sampled bit.
	if !payload.Sampled && len(verified.Path) == 1 && b.sampler.Sample() {
		payload.Sampled = true
		if payload.TraceID == "" {
			payload.TraceID = obs.NewTraceID()
		}
	}
	if span == nil && payload.Sampled {
		span = &obs.Span{Domain: b.cfg.Domain, BB: string(b.cfg.Key.DN), VerifyNS: verifyNS}
	}

	// Duplicate route keys would corrupt cancellation state. The key is
	// the RAR id salted with the unsigned attempt/split fields, so a
	// re-routed or split copy crossing a shared domain is a fresh
	// registration while a retransmission from an upstream hop that
	// lost the response still collides. A duplicate waits out any
	// still-in-flight first copy, then replays its outcome verbatim, so
	// retries are idempotent (re-admitting would double-book, denying a
	// granted chain would strand it). The placeholder registered for
	// fresh keys is what lets a concurrent retransmission find the
	// first copy.
	key := routeKey(spec.RARID, payload)
	b.mu.Lock()
	st, dup := b.routes[key]
	if !dup {
		b.rarEpoch++
		st = &rarState{spec: spec, done: make(chan struct{}), epoch: b.rarEpoch}
		b.routes[key] = st
	}
	b.mu.Unlock()
	if dup {
		if st.done != nil {
			<-st.done
		}
		b.mu.Lock()
		outcome := st.outcome
		b.mu.Unlock()
		b.m.replays.Inc()
		b.log.Info("reserve: replaying recorded outcome for retransmitted RAR",
			obs.AttrRAR, spec.RARID, obs.AttrPeer, string(peer.DN), obs.AttrTrace, payload.TraceID)
		if outcome != nil {
			// The recorded outcome already carries this hop's span (and
			// everything below it), so a replay never duplicates spans.
			resp := *outcome // shallow copy: Serve stamps the per-call ID
			return &resp
		}
		return b.deny(spec.RARID, fmt.Sprintf("%s: duplicate RAR id %s", b.cfg.Domain, spec.RARID))
	}
	resp := b.processReserve(key, peer, payload, env, verified, now, span)
	if resp.Result != nil {
		if resp.Result.Granted {
			b.m.granted.Inc()
			if len(verified.Path) == 1 {
				// This hop is the source domain: its handle time IS the
				// end-to-end grant time the user observes.
				b.m.grantSeconds.ObserveSince(t0)
			}
		} else {
			b.m.denied.Inc()
		}
	}
	b.m.handleSeconds.ObserveSince(t0)
	// Stamp the span before recording the outcome, so replays return
	// the identical trace.
	finishTrace(resp, span, payload.TraceID, t0)
	b.logReserveVerdict(spec, payload.TraceID, resp, time.Since(t0))
	b.recordReserveEvent(spec.RARID, string(spec.User), payload, resp, t0)
	b.mu.Lock()
	st.outcome = resp
	b.mu.Unlock()
	// Journal the settled entry before releasing waiters, so a cancel
	// that was blocked on done always journals after this record.
	b.journalRAR(key, st)
	// Group commit: in a replica group the outcome is withheld until a
	// majority holds everything up to and including that record, so a
	// grant the caller ever saw survives this leader's death.
	b.replWaitCommit()
	close(st.done)
	b.maybeCheckpoint()
	return resp
}

// logReserveVerdict emits the one per-reserve log record: grants at
// info, denials (which were silent before the obs layer) at warn.
func (b *BB) logReserveVerdict(spec *core.Spec, traceID string, resp *signalling.Message, took time.Duration) {
	if resp.Result == nil {
		return
	}
	if resp.Result.Granted {
		b.log.Info("reserve granted",
			obs.AttrRAR, spec.RARID, obs.AttrTrace, traceID,
			"user", string(spec.User), "bw", spec.Bandwidth.String(),
			"dest", spec.DestDomain, "handle", resp.Result.Handle, "took", took)
		return
	}
	b.log.Warn("reserve denied",
		obs.AttrRAR, spec.RARID, obs.AttrTrace, traceID,
		"user", string(spec.User), "bw", spec.Bandwidth.String(),
		"dest", spec.DestDomain, "reason", resp.Result.Reason, "took", took)
}

// rollback cancels an optimistic local admission that must not
// survive (downstream denial, transport failure, encode error) and
// accounts for it.
func (b *BB) rollback(handle, rarID, why string) {
	_ = b.table.Cancel(handle)
	b.m.rollbacks.Inc()
	b.log.Info("reserve: rolled back local admission",
		obs.AttrRAR, rarID, "handle", handle, "why", why)
}

// processReserve runs the admission pipeline for a first-seen RAR:
// upstream SLA check, policy decision, local admission, and downstream
// forwarding. The caller records the returned message as the RAR's
// replayable outcome. span, non-nil only on traced reserves, collects
// where the hop's time went; processReserve pins span.Verdict only
// when the result alone cannot distinguish the failure mode (transport
// error vs. own denial vs. rolled-back admission).
func (b *BB) processReserve(key string, peer signalling.Peer, payload *signalling.ReservePayload, env *envelope.Envelope, verified *core.VerifiedRequest, now time.Time, span *obs.Span) *signalling.Message {
	spec := verified.Spec

	// Identify the upstream entity. A single-layer chain came from the
	// user directly; otherwise the outermost signer is the upstream BB.
	fromUser := len(verified.Path) == 1
	// The multipath fields are broker-internal: the user signs the RAR
	// but never pins paths, claims re-route attempts or carries split
	// shares — those are minted hop-to-hop, under broker signatures.
	if fromUser && (len(payload.PathPin) > 0 || payload.Attempt != 0 ||
		payload.SplitPart != 0 || payload.SplitOf != 0 || payload.SplitBW != 0) {
		return b.deny(spec.RARID, fmt.Sprintf("%s: multipath fields are broker-internal", b.cfg.Domain))
	}
	// bw is what this hop admits: the signed total or, for a split
	// child, the unsigned share — which may only reduce the signed
	// bandwidth, never raise it (that is why it can ride unsigned).
	bw := spec.Bandwidth
	if payload.SplitPart != 0 || payload.SplitOf != 0 || payload.SplitBW != 0 {
		switch {
		case payload.SplitOf < 2 || payload.SplitPart < 1 || payload.SplitPart > payload.SplitOf:
			return b.deny(spec.RARID, fmt.Sprintf("%s: malformed split part %d of %d", b.cfg.Domain, payload.SplitPart, payload.SplitOf))
		case payload.SplitBW <= 0 || units.Bandwidth(payload.SplitBW) > spec.Bandwidth:
			return b.deny(spec.RARID, fmt.Sprintf("%s: split share outside the signed bandwidth", b.cfg.Domain))
		case spec.Tunnel:
			return b.deny(spec.RARID, fmt.Sprintf("%s: tunnel reservations cannot split", b.cfg.Domain))
		}
		bw = units.Bandwidth(payload.SplitBW)
	}
	if !fromUser {
		upBB := verified.Path[len(verified.Path)-1]
		upDomain, ok := b.domainOfBB(upBB)
		if !ok {
			return b.deny(spec.RARID, fmt.Sprintf("%s: unknown upstream broker %s", b.cfg.Domain, upBB))
		}
		// SLA conformance: the premium aggregate entering from the
		// upstream peer must stay inside the contracted profile.
		contract := b.cfg.InboundSLAs[upDomain]
		if contract == nil {
			return b.deny(spec.RARID, fmt.Sprintf("%s: no SLA with upstream domain %s", b.cfg.Domain, upDomain))
		}
		if !contract.Valid(now) {
			return b.deny(spec.RARID, fmt.Sprintf("%s: SLA with %s not valid", b.cfg.Domain, upDomain))
		}
		committed := b.cfg.Capacity - b.table.Available(spec.Window)
		if err := contract.Conforms(committed, bw); err != nil {
			return b.deny(spec.RARID, fmt.Sprintf("%s: %v", b.cfg.Domain, err))
		}
	}

	// Consult the policy server (§5): validated assertions,
	// capability-chain verification and local policy.
	q := &policysrv.Query{
		User:               spec.User,
		Bandwidth:          bw,
		Window:             spec.Window,
		Available:          b.table.Available(spec.Window),
		SourceDomain:       spec.SourceDomain,
		DestDomain:         spec.DestDomain,
		Assertions:         spec.Assertions,
		CapabilityChain:    verified.Capabilities,
		RequireRestriction: spec.RestrictionFor(),
		LinkedReservations: b.validateLinkedHandles(spec),
	}
	tPolicy := time.Now()
	res, err := b.cfg.Policy.Decide(q)
	if span != nil {
		span.PolicyNS = time.Since(tPolicy).Nanoseconds()
	}
	if err != nil {
		return b.deny(spec.RARID, fmt.Sprintf("%s: policy server: %v", b.cfg.Domain, err))
	}
	if !res.Decision.Granted() {
		return b.deny(spec.RARID, fmt.Sprintf("%s: policy denied: %s", b.cfg.Domain, res.Decision.Reason))
	}

	// Admission control against the local reservation table.
	tAdmit := time.Now()
	r, err := b.table.Admit(resv.AdmitRequest{
		User:      spec.User,
		SrcHost:   spec.SrcHost,
		DstHost:   spec.DstHost,
		Bandwidth: bw,
		Window:    spec.Window,
		Tunnel:    spec.Tunnel,
	})
	if span != nil {
		span.AdmitNS = time.Since(tAdmit).Nanoseconds()
	}
	if err != nil {
		return b.deny(spec.RARID, fmt.Sprintf("%s: admission: %v", b.cfg.Domain, err))
	}

	isDest := spec.DestDomain == b.cfg.Domain
	local := payload.Mode == signalling.ModeLocal

	if isDest || local {
		return b.finishGrant(key, peer, verified, r, fromUser, isDest && !local)
	}

	// Forward downstream. A pinned payload (a re-route attempt or split
	// child minted by the ingress) follows its pin — NextHop would put
	// the copy right back on the broken primary path. The ingress, with
	// multipath enabled, owns path choice; everyone else forwards
	// hop-by-hop along the shortest path as before.
	if len(payload.PathPin) > 0 {
		next, ok := pinnedNext(payload.PathPin, b.cfg.Domain)
		if !ok {
			b.rollback(r.Handle, spec.RARID, "not on pinned path")
			return b.deny(spec.RARID, fmt.Sprintf("%s: not on pinned path", b.cfg.Domain))
		}
		return b.forwardVia(key, next, peer, payload, env, verified, res, r, span)
	}
	if fromUser && b.maxPaths() > 1 {
		return b.forwardMultipath(key, peer, payload, env, verified, res, r, span)
	}
	nextDomain, err := b.cfg.Topo.NextHop(b.cfg.Domain, spec.DestDomain)
	if err != nil {
		b.rollback(r.Handle, spec.RARID, "no route")
		return b.deny(spec.RARID, fmt.Sprintf("%s: routing: %v", b.cfg.Domain, err))
	}
	return b.forwardVia(key, nextDomain, peer, payload, env, verified, res, r, span)
}

// pinnedNext finds the successor of domain on a pinned path.
func pinnedNext(pin []string, domain string) (string, bool) {
	for i, d := range pin {
		if d == domain && i+1 < len(pin) {
			return pin[i+1], true
		}
	}
	return "", false
}

// forwardChild performs one downstream forward of the (possibly
// pinned, possibly split) payload and settles the transport layer: on
// a transport failure or a result-less response it fires the
// journaled rollback cancel for the child key — the hop below may
// have admitted before the response was lost — and returns an error;
// otherwise the downstream result, grant or denial, comes back as is.
// The caller owns the local admission either way.
func (b *BB) forwardChild(childKey string, nd *topology.Domain, peer signalling.Peer, payload *signalling.ReservePayload, env *envelope.Envelope, verified *core.VerifiedRequest, res *policysrv.Result, span *obs.Span) (*signalling.Message, error) {
	nextCert := b.cfg.PeerCerts[nd.BBDN]
	if nextCert == nil {
		return nil, fmt.Errorf("no certificate for next hop %s", nd.BBDN)
	}
	extended, err := b.proto.Extend(env, peer.CertDER, verified, nextCert, res.Additions)
	if err != nil {
		return nil, fmt.Errorf("extend: %w", err)
	}
	fwd, err := signalling.NewReserveMessage(signalling.ModeEndToEnd, extended)
	if err != nil {
		return nil, fmt.Errorf("encode: %w", err)
	}
	// The trace id and sampling decision ride the whole chain so every
	// hop below records a span into the same trace; the pin and split
	// fields ride it so every hop below computes the same route key.
	fwd.Reserve.TraceID = payload.TraceID
	fwd.Reserve.Sampled = payload.Sampled
	fwd.Reserve.PathPin = payload.PathPin
	fwd.Reserve.Attempt = payload.Attempt
	fwd.Reserve.SplitPart = payload.SplitPart
	fwd.Reserve.SplitOf = payload.SplitOf
	fwd.Reserve.SplitBW = payload.SplitBW
	b.m.forwarded.Inc()
	tDown := time.Now()
	downstream, retries, err := b.callPeer(nd.BBDN, fwd)
	b.m.downstreamSeconds.ObserveSince(tDown)
	if span != nil {
		// Accumulate: a re-routing ingress forwards more than once.
		span.DownstreamNS += time.Since(tDown).Nanoseconds()
		span.Retries += retries
	}
	if err == nil && downstream.Result == nil {
		err = fmt.Errorf("downstream sent no result")
	}
	if err != nil {
		b.cancelDownstream(nd.BBDN, childKey)
		b.log.Error("reserve: downstream call failed",
			obs.AttrRAR, childKey, obs.AttrPeer, string(nd.BBDN),
			obs.AttrTrace, payload.TraceID, "retries", retries, "err", err)
		return nil, err
	}
	return downstream, nil
}

// forwardVia forwards to one named next hop and settles the outcome —
// the single-path case: legacy hop-by-hop forwarding and mid-chain
// hops of a pinned path. Transport failure or denial rolls back the
// local admission and propagates; a grant records the route.
func (b *BB) forwardVia(key, nextDomain string, peer signalling.Peer, payload *signalling.ReservePayload, env *envelope.Envelope, verified *core.VerifiedRequest, res *policysrv.Result, r *resv.Reservation, span *obs.Span) *signalling.Message {
	spec := verified.Spec
	nd, ok := b.cfg.Topo.Domain(nextDomain)
	if !ok {
		b.rollback(r.Handle, spec.RARID, "unknown next hop")
		return b.deny(spec.RARID, fmt.Sprintf("%s: unknown next hop %s", b.cfg.Domain, nextDomain))
	}
	if _, adjacent := b.cfg.Topo.LinkBetween(b.cfg.Domain, nextDomain); !adjacent {
		b.rollback(r.Handle, spec.RARID, "next hop not adjacent")
		return b.deny(spec.RARID, fmt.Sprintf("%s: pinned next hop %s is not a neighbour", b.cfg.Domain, nextDomain))
	}
	downstream, err := b.forwardChild(key, nd, peer, payload, env, verified, res, span)
	if err != nil {
		// Roll back the optimistic local admission; forwardChild already
		// scheduled the downstream cancel for the unknown-outcome case.
		b.rollback(r.Handle, spec.RARID, "downstream call failed")
		if span != nil {
			span.Verdict = obs.VerdictError
			span.Reason = err.Error()
		}
		return b.deny(spec.RARID, fmt.Sprintf("%s: downstream call: %v", b.cfg.Domain, err))
	}
	if !downstream.Result.Granted {
		// Roll back the optimistic local admission and propagate the
		// denial (with the downstream approvals/reasons) upstream.
		b.rollback(r.Handle, spec.RARID, "downstream denied")
		resp := signalling.ErrorResult(downstream.Result.Reason)
		resp.Result.Approvals = downstream.Result.Approvals
		resp.Result.Trace = downstream.Result.Trace
		if a, err := b.signApproval(spec.RARID, "", false, "upstream of denial"); err == nil {
			resp.Result.Approvals = append(resp.Result.Approvals, a)
		}
		if span != nil {
			// This hop did not refuse; the refusal is in a deeper span.
			span.Verdict = obs.VerdictRolledBack
		}
		return resp
	}
	return b.settleGrant(key, key, nd.BBDN, peer, verified, r, downstream)
}

// deniedAtDest reports whether a denial came from the destination
// domain itself — its signed refusal is on the approval stack — as
// opposed to a mid-chain hop a disjoint path can route around. Every
// disjoint path converges on the destination, so its refusal is
// terminal for re-routing and splitting alike.
func deniedAtDest(res *signalling.ResultPayload, dest string) bool {
	for _, a := range res.Approvals {
		if a.Domain == dest && !a.Granted {
			return true
		}
	}
	return false
}

// forwardMultipath is the ingress forwarding strategy once
// Config.MaxPaths enables re-route: try each disjoint path in cost
// order — skipping paths whose first-hop breaker is already open,
// pinning the chosen path onto the forwarded copy, salting the route
// key per attempt so a shared downstream domain cannot mistake a
// re-route for a retransmission — and, when no single path grants the
// full bandwidth because of a mid-chain refusal, fall back to
// splitting the reservation across paths.
func (b *BB) forwardMultipath(key string, peer signalling.Peer, payload *signalling.ReservePayload, env *envelope.Envelope, verified *core.VerifiedRequest, res *policysrv.Result, r *resv.Reservation, span *obs.Span) *signalling.Message {
	spec := verified.Spec
	paths, err := b.cfg.Topo.Paths(b.cfg.Domain, spec.DestDomain, b.maxPaths())
	if err != nil {
		b.rollback(r.Handle, spec.RARID, "no route")
		return b.deny(spec.RARID, fmt.Sprintf("%s: routing: %v", b.cfg.Domain, err))
	}
	var lastDenial *signalling.ResultPayload
	midDenials := 0
	attempted := 0
	for i, path := range paths {
		nd, ok := b.cfg.Topo.Domain(path[1])
		if !ok {
			continue
		}
		if wait, open := b.breakerFor(nd.BBDN).open(b.cfg.Clock()); open {
			b.m.rerouteSkips.Inc()
			b.log.Info("reserve: skipping path, first-hop breaker open",
				obs.AttrRAR, spec.RARID, obs.AttrPeer, string(nd.BBDN),
				"path", strings.Join(path, ">"), "reopens_in", wait.Round(time.Millisecond))
			continue
		}
		child := *payload
		child.PathPin = path
		child.Attempt = i
		childKey := routeKey(spec.RARID, &child)
		if attempted > 0 {
			b.m.reroutes.Inc()
			b.log.Info("reserve: re-routing onto disjoint path",
				obs.AttrRAR, spec.RARID, "attempt", i, "path", strings.Join(path, ">"))
		}
		attempted++
		downstream, err := b.forwardChild(childKey, nd, peer, &child, env, verified, res, span)
		if err != nil {
			continue // transport failure; the rollback cancel is scheduled
		}
		if downstream.Result.Granted {
			return b.settleGrant(key, childKey, nd.BBDN, peer, verified, r, downstream)
		}
		lastDenial = downstream.Result
		if deniedAtDest(downstream.Result, spec.DestDomain) {
			break
		}
		midDenials++
	}
	if midDenials > 0 && b.splitParts() > 0 && len(paths) >= 2 && !spec.Tunnel {
		if resp := b.splitAcross(key, peer, payload, env, verified, res, r, paths, span); resp != nil {
			return resp
		}
	}
	b.rollback(r.Handle, spec.RARID, "no path granted")
	if lastDenial != nil {
		resp := signalling.ErrorResult(lastDenial.Reason)
		resp.Result.Approvals = lastDenial.Approvals
		resp.Result.Trace = lastDenial.Trace
		if a, err := b.signApproval(spec.RARID, "", false, "upstream of denial"); err == nil {
			resp.Result.Approvals = append(resp.Result.Approvals, a)
		}
		if span != nil {
			span.Verdict = obs.VerdictRolledBack
		}
		return resp
	}
	if span != nil {
		span.Verdict = obs.VerdictError
		span.Reason = "no usable path"
	}
	return b.deny(spec.RARID, fmt.Sprintf("%s: no usable path to %s (%d disjoint, all failed)", b.cfg.Domain, spec.DestDomain, len(paths)))
}

// splitAcross places the reservation as per-path children, each
// carrying an unsigned share of the signed bandwidth; the shares sum
// to it exactly. The children settle atomically through a saga: the
// "release" compensation for the local admission is journaled first
// (compensations run newest-first, so it lands last), each child's
// "cancel" debt is journaled before its forward — a crash inside the
// call window must still withdraw whatever that path admitted. All
// children granted commits the saga and drops the debt; any refusal
// aborts, and the compensations withdraw the granted siblings and
// release the local admission (the caller must then NOT rollback
// again). Returns nil when fewer than two paths were usable — the
// caller falls through to the ordinary denial.
func (b *BB) splitAcross(key string, peer signalling.Peer, payload *signalling.ReservePayload, env *envelope.Envelope, verified *core.VerifiedRequest, res *policysrv.Result, r *resv.Reservation, paths [][]string, span *obs.Span) *signalling.Message {
	spec := verified.Spec
	parts := b.splitParts()
	usable := make([][]string, 0, parts)
	nds := make([]*topology.Domain, 0, parts)
	for _, path := range paths {
		nd, ok := b.cfg.Topo.Domain(path[1])
		if !ok {
			continue
		}
		if _, open := b.breakerFor(nd.BBDN).open(b.cfg.Clock()); open {
			continue
		}
		usable = append(usable, path)
		nds = append(nds, nd)
		if len(usable) == parts {
			break
		}
	}
	if len(usable) < 2 {
		return nil
	}
	parts = len(usable)
	total := int64(spec.Bandwidth)
	share := total / int64(parts)
	shares := make([]int64, parts)
	for p := range shares {
		shares[p] = share
	}
	shares[0] += total - share*int64(parts)

	sagaID := b.mintSagaID("split:" + key)
	b.m.sagasStarted.Inc()
	if err := b.sagas.Begin(sagaID); err != nil {
		return nil
	}
	relData, _ := json.Marshal(releaseComp{Handle: r.Handle, Key: key})
	_ = b.sagas.Did(sagaID, "release", relData)
	b.log.Info("reserve: splitting across disjoint paths",
		obs.AttrRAR, spec.RARID, "parts", parts, "bw", spec.Bandwidth.String())

	children := make([]childRoute, 0, parts)
	var approvals []signalling.DomainApproval
	var trace []obs.Span
	policyInfo := map[string]string{}
	var failure *signalling.ResultPayload
	for p := 0; p < parts; p++ {
		child := *payload
		child.PathPin = usable[p]
		child.SplitPart = p + 1
		child.SplitOf = parts
		child.SplitBW = shares[p]
		childKey := routeKey(spec.RARID, &child)
		cd, _ := json.Marshal(cancelComp{Peer: nds[p].BBDN, Key: childKey})
		_ = b.sagas.Did(sagaID, "cancel", cd)
		downstream, err := b.forwardChild(childKey, nds[p], peer, &child, env, verified, res, span)
		if err != nil {
			break
		}
		if !downstream.Result.Granted {
			failure = downstream.Result
			break
		}
		children = append(children, childRoute{Next: nds[p].BBDN, Key: childKey, BW: shares[p]})
		approvals = append(approvals, downstream.Result.Approvals...)
		trace = append(trace, downstream.Result.Trace...)
		for k, v := range downstream.Result.PolicyInfo {
			policyInfo[k] = v
		}
	}
	if len(children) == parts {
		b.sagas.Commit(sagaID)
		b.m.sagasCommitted.Inc()
		b.m.splits.Inc()
		b.recordRoute(key, spec, r.Handle, "", "", children, peer)
		b.installEdgeFlow(spec)
		b.syncDataPlane()
		b.log.Info("reserve: split reservation granted",
			obs.AttrRAR, spec.RARID, "parts", parts)
		resp := &signalling.Message{Type: signalling.MsgResult, Result: &signalling.ResultPayload{
			Granted:    true,
			Handle:     r.Handle,
			Approvals:  approvals,
			PolicyInfo: policyInfo,
			Trace:      trace,
		}}
		if a, err := b.signApproval(spec.RARID, r.Handle, true, ""); err == nil {
			resp.Result.Approvals = append(resp.Result.Approvals, a)
		}
		return resp
	}
	// Partial failure: abort — the compensations withdraw every child
	// forwarded so far (granted or unknown) and release the local
	// admission, so no b.rollback here.
	b.m.splitFails.Inc()
	b.sagas.Abort(sagaID)
	reason := fmt.Sprintf("%s: split reservation aborted", b.cfg.Domain)
	if failure != nil && failure.Reason != "" {
		reason = failure.Reason
	}
	resp := signalling.ErrorResult(reason)
	if failure != nil {
		resp.Result.Approvals = failure.Approvals
		resp.Result.Trace = failure.Trace
	}
	if a, err := b.signApproval(spec.RARID, "", false, "split aborted"); err == nil {
		resp.Result.Approvals = append(resp.Result.Approvals, a)
	}
	if span != nil {
		span.Verdict = obs.VerdictRolledBack
	}
	return resp
}

// settleGrant records a forwarded grant: tunnel registration, route
// state — downKey is the route key the downstream leg runs under,
// which differs from the hop's own key when the ingress re-routed —
// the data plane, and this domain's approval stacked on top of the
// downstream ones.
func (b *BB) settleGrant(key, downKey string, next identity.DN, peer signalling.Peer, verified *core.VerifiedRequest, r *resv.Reservation, downstream *signalling.Message) *signalling.Message {
	spec := verified.Spec
	fromUser := len(verified.Path) == 1
	// Tunnel registration happens before the grant is recorded: a RAR
	// id colliding with a live tunnel must surface as a denial (with the
	// admission rolled back and the downstream chain cancelled), not
	// silently shadow the existing endpoint.
	if fromUser && spec.Tunnel {
		if err := b.registerTunnelSource(spec, downstream.Result); err != nil {
			b.rollback(r.Handle, spec.RARID, "tunnel registration failed")
			b.cancelDownstream(next, downKey)
			return b.deny(spec.RARID, fmt.Sprintf("%s: tunnel registration: %v", b.cfg.Domain, err))
		}
	}
	b.recordRoute(key, spec, r.Handle, next, downKey, nil, peer)
	if fromUser {
		// Source domain: program the per-flow edge marker.
		b.installEdgeFlow(spec)
	}
	b.syncDataPlane()
	resp := &signalling.Message{Type: signalling.MsgResult, Result: &signalling.ResultPayload{
		Granted:    true,
		Handle:     r.Handle,
		Approvals:  downstream.Result.Approvals,
		PolicyInfo: downstream.Result.PolicyInfo,
		Trace:      downstream.Result.Trace,
	}}
	if a, err := b.signApproval(spec.RARID, r.Handle, true, ""); err == nil {
		resp.Result.Approvals = append(resp.Result.Approvals, a)
	}
	return resp
}

// finishGrant completes a grant at the destination domain (or a
// local-mode reservation).
func (b *BB) finishGrant(key string, peer signalling.Peer, verified *core.VerifiedRequest, r *resv.Reservation, fromUser, isDest bool) *signalling.Message {
	spec := verified.Spec
	if isDest && spec.Tunnel {
		// Register before granting: a duplicate tunnel RAR id is a
		// denial, not a silent shadow of the live endpoint.
		if err := b.registerTunnelDest(verified, peer); err != nil {
			b.rollback(r.Handle, spec.RARID, "tunnel registration failed")
			return b.deny(spec.RARID, fmt.Sprintf("%s: tunnel registration: %v", b.cfg.Domain, err))
		}
	}
	b.recordRoute(key, spec, r.Handle, "", "", nil, peer)
	if fromUser {
		b.installEdgeFlow(spec)
	}
	b.syncDataPlane()
	resp := signalling.OKResult(r.Handle)
	if a, err := b.signApproval(spec.RARID, r.Handle, true, ""); err == nil {
		resp.Result.Approvals = []signalling.DomainApproval{a}
	}
	return resp
}

// recordRoute fills in the route entry's in-flight placeholder for
// cancellation and tunnel use. The entry itself was registered under
// its route key when the reserve arrived, so retransmissions and
// cancels can find it.
func (b *BB) recordRoute(key string, spec *core.Spec, handle string, next identity.DN, downKey string, children []childRoute, peer signalling.Peer) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.routes[key]
	if !ok {
		return
	}
	st.handle = handle
	st.next = next
	st.tunnel = spec.Tunnel
	st.sourceBB = peer.DN
	st.spec = spec
	st.downKey = downKey
	st.children = children
}

// validateLinkedHandles checks the co-reservation references against
// the local resource managers (destination-domain semantics of
// Figure 6: HasValidCPUResv(RAR)).
func (b *BB) validateLinkedHandles(spec *core.Spec) map[string]bool {
	out := make(map[string]bool)
	for resource, handle := range spec.LinkedHandles {
		switch resource {
		case "cpu":
			if b.cfg.CPU != nil && b.cfg.CPU.ValidDuring(handle, spec.Window) {
				out["cpu"] = true
			}
		case "disk":
			if b.cfg.Disk != nil && b.cfg.Disk.Valid(handle, spec.Window.Start) {
				out["disk"] = true
			}
		}
	}
	return out
}

func (b *BB) handleCancel(peer signalling.Peer, payload *signalling.CancelPayload) *signalling.Message {
	b.m.cancels.Inc()
	b.mu.Lock()
	st, ok := b.routes[payload.RARID]
	b.mu.Unlock()
	if !ok {
		return signalling.ErrorResult(fmt.Sprintf("%s: unknown RAR %s", b.cfg.Domain, payload.RARID))
	}
	// If the reserve that created this entry is still in flight (an
	// upstream hop gave up on it and is now cancelling), wait for it to
	// settle so its admission — and its recorded downstream hop — are
	// visible to cancel.
	if st.done != nil {
		<-st.done
	}
	b.mu.Lock()
	if cur, still := b.routes[payload.RARID]; !still || cur != st {
		b.mu.Unlock()
		return signalling.ErrorResult(fmt.Sprintf("%s: unknown RAR %s", b.cfg.Domain, payload.RARID))
	}
	delete(b.routes, payload.RARID)
	b.mu.Unlock()
	// Journal the route removal even if the table cancel below fails:
	// the entry is gone from the live map either way, and a recovered
	// broker must agree.
	b.journalRARCancel(payload.RARID, st.epoch)
	// Tear the tunnel endpoint down before the table cancel can bail
	// out: the route entry is already gone, and a stale endpoint left
	// behind would collide with a re-establishment of the same RAR id.
	// Tunnels and edge flows live under the signed RAR id, whatever
	// route-key salt this hop holds.
	base := baseRARID(payload.RARID)
	if ep, live := b.tunnels.reg.Get(base); live {
		b.tunnels.reg.Remove(base)
		b.tunnels.dropBatches(base, ep.Epoch)
		b.journalTunnelRemove(base, ep.Epoch)
	}
	b.removeEdgeFlow(base)
	if err := b.table.Cancel(st.handle); err != nil {
		return signalling.ErrorResult(fmt.Sprintf("%s: %v", b.cfg.Domain, err))
	}
	b.syncDataPlane()
	// Propagate downstream along the recorded path (best effort, under
	// the call deadline: a dead hop must not wedge the cancel chain).
	// If the synchronous attempt fails, hand the cancel to the
	// persistent async path so hops below the failure don't stay booked.
	// A split ingress fans out to every child leg under that leg's own
	// route key; a re-routed ingress propagates the key the surviving
	// attempt ran under (downKey), not its own.
	for _, c := range st.children {
		if _, _, err := b.callPeer(c.Next, &signalling.Message{
			Type:   signalling.MsgCancel,
			Cancel: &signalling.CancelPayload{RARID: c.Key},
		}); err != nil {
			b.cancelDownstream(c.Next, c.Key)
		}
	}
	if len(st.children) == 0 && st.next != "" {
		downKey := st.downKey
		if downKey == "" {
			downKey = payload.RARID
		}
		if _, _, err := b.callPeer(st.next, &signalling.Message{
			Type:   signalling.MsgCancel,
			Cancel: &signalling.CancelPayload{RARID: downKey},
		}); err != nil {
			b.cancelDownstream(st.next, downKey)
		}
	}
	b.log.Info("cancel: released reservation",
		obs.AttrRAR, payload.RARID, obs.AttrPeer, string(peer.DN), "handle", st.handle)
	// The cancel's own records (route removal, table cancel, tunnel
	// teardown) join the group commit before the caller hears back.
	b.replWaitCommit()
	b.maybeCheckpoint()
	return signalling.OKResult(st.handle)
}

func (b *BB) handleStatus(payload *signalling.StatusPayload) *signalling.Message {
	b.mu.Lock()
	st, ok := b.routes[payload.RARID]
	b.mu.Unlock()
	if !ok {
		return signalling.ErrorResult(fmt.Sprintf("%s: unknown RAR %s", b.cfg.Domain, payload.RARID))
	}
	r, ok := b.table.Lookup(st.handle)
	if !ok {
		return signalling.ErrorResult(fmt.Sprintf("%s: handle %s vanished", b.cfg.Domain, st.handle))
	}
	resp := signalling.OKResult(st.handle)
	resp.Result.PolicyInfo = map[string]string{
		"status":    r.Status.String(),
		"bandwidth": r.Bandwidth.String(),
		"window":    r.Window.String(),
	}
	return resp
}

// registerTunnelDest records the tunnel endpoint at the destination
// domain; the authenticated source broker (the first BB on the path)
// is the only entity allowed to drive sub-flow allocations over the
// direct channel. A duplicate RAR id — the establishing reservation of
// a still-live tunnel — is an error the caller must surface as a
// denial, not swallow.
func (b *BB) registerTunnelDest(verified *core.VerifiedRequest, peer signalling.Peer) error {
	spec := verified.Spec
	sourceBB := peer.DN
	if len(verified.Path) > 1 {
		sourceBB = verified.Path[1] // [user, BB_src, ...]
	}
	ep, err := tunnel.NewEndpoint(spec.RARID, spec.Bandwidth, spec.Window, sourceBB, spec.User)
	if err != nil {
		return err
	}
	return b.registerTunnel(ep)
}

// registerTunnelSource records the tunnel endpoint at the source
// domain, remembering the destination broker from the signed
// approvals so sub-flow requests can go directly to it.
func (b *BB) registerTunnelSource(spec *core.Spec, result *signalling.ResultPayload) error {
	var destBB identity.DN
	for _, a := range result.Approvals {
		if a.Domain == spec.DestDomain && a.Granted {
			destBB = a.BBDN
			break
		}
	}
	ep, err := tunnel.NewEndpoint(spec.RARID, spec.Bandwidth, spec.Window, destBB, spec.User)
	if err != nil {
		return err
	}
	return b.registerTunnel(ep)
}

// registerTunnel stamps the endpoint with a fresh registration epoch,
// adds it to the registry (duplicate RAR ids are refused) and journals
// the establishment.
func (b *BB) registerTunnel(ep *tunnel.Endpoint) error {
	b.mu.Lock()
	b.rarEpoch++
	ep.Epoch = b.rarEpoch
	b.mu.Unlock()
	if err := b.tunnels.reg.Add(ep); err != nil {
		return err
	}
	b.journalTunnel(ep)
	return nil
}

// RegisterTunnelEndpoint registers a pre-provisioned tunnel endpoint at
// this broker (an out-of-band established aggregate); the registration
// is journaled like one created through the signalling path. Duplicate
// RAR ids are refused.
func (b *BB) RegisterTunnelEndpoint(ep *tunnel.Endpoint) error {
	return b.registerTunnel(ep)
}

// tunnelFor resolves a tunnel endpoint and checks that the peer is
// authorized on it: only the broker authenticated during establishment
// (or the tunnel owner, for the source side) may drive sub-flows.
func (b *BB) tunnelFor(peer signalling.Peer, rarID string) (*tunnel.Endpoint, string) {
	ep, ok := b.tunnels.reg.Get(rarID)
	if !ok {
		return nil, fmt.Sprintf("%s: no tunnel %s", b.cfg.Domain, rarID)
	}
	if peer.DN != ep.PeerBB && peer.DN != ep.Owner {
		return nil, fmt.Sprintf("%s: %s is not authorized on tunnel %s", b.cfg.Domain, peer.DN, rarID)
	}
	return ep, ""
}

func (b *BB) handleTunnelAlloc(peer signalling.Peer, payload *signalling.TunnelAllocPayload) *signalling.Message {
	ep, reason := b.tunnelFor(peer, payload.TunnelRARID)
	if ep == nil {
		return signalling.ErrorResult(reason)
	}
	gen, err := ep.Allocate(payload.SubFlowID, units.Bandwidth(payload.Bandwidth))
	if err != nil {
		b.m.tunnelDenied.Inc()
		return signalling.ErrorResult(err.Error())
	}
	b.m.tunnelAllocs.Inc()
	b.journalTunnelAlloc(ep, payload.SubFlowID, units.Bandwidth(payload.Bandwidth), gen)
	return signalling.OKResult(payload.SubFlowID)
}

func (b *BB) handleTunnelRelease(peer signalling.Peer, payload *signalling.TunnelReleasePayload) *signalling.Message {
	ep, reason := b.tunnelFor(peer, payload.TunnelRARID)
	if ep == nil {
		return signalling.ErrorResult(reason)
	}
	_, gen, err := ep.Release(payload.SubFlowID)
	if err != nil {
		b.m.tunnelDenied.Inc()
		return signalling.ErrorResult(err.Error())
	}
	b.m.tunnelReleases.Inc()
	b.journalTunnelRelease(ep, payload.SubFlowID, gen)
	return signalling.OKResult(payload.SubFlowID)
}

// handleTunnelBatch applies many sub-flow ops in one RPC. Batches are
// idempotent: the first copy applies the ops, journals one record
// (applied ops + outcome) and caches the outcome; a retransmission with
// the same batch id — including one racing the original mid-flight —
// gets the recorded outcome instead of a second application.
func (b *BB) handleTunnelBatch(peer signalling.Peer, payload *signalling.TunnelBatchPayload) *signalling.Message {
	t0 := time.Now()
	if err := payload.Validate(); err != nil {
		b.recordBatchEvent(payload, len(payload.Ops), obs.VerdictDenied, err.Error(), t0)
		return signalling.ErrorResult(err.Error())
	}
	ep, reason := b.tunnelFor(peer, payload.TunnelRARID)
	if ep == nil {
		b.recordBatchEvent(payload, len(payload.Ops), obs.VerdictDenied, reason, t0)
		return signalling.ErrorResult(reason)
	}
	st, dup := b.tunnels.begin(payload.TunnelRARID, payload.BatchID, ep.Epoch)
	if dup {
		<-st.done
		b.m.tunnelBatchReplays.Inc()
		b.log.Info("tunnel: replaying recorded batch outcome",
			obs.AttrRAR, payload.TunnelRARID, obs.AttrPeer, string(peer.DN), "batch", payload.BatchID)
		if outcome := b.tunnels.outcomeOf(st); outcome != nil {
			resp := *outcome // shallow copy: Serve stamps the per-call ID
			return &resp
		}
		return signalling.ErrorResult(fmt.Sprintf("%s: batch %s settled without outcome", b.cfg.Domain, payload.BatchID))
	}
	results := make([]signalling.TunnelOpResult, len(payload.Ops))
	applied := make([]tunnelOpRec, 0, len(payload.Ops))
	granted := true
	for i, op := range payload.Ops {
		results[i].SubFlowID = op.SubFlowID
		switch op.Action {
		case signalling.OpAlloc:
			gen, err := ep.Allocate(op.SubFlowID, units.Bandwidth(op.Bandwidth))
			if err != nil {
				results[i].Reason = err.Error()
				granted = false
				b.m.tunnelDenied.Inc()
				continue
			}
			results[i].Granted = true
			b.m.tunnelAllocs.Inc()
			applied = append(applied, tunnelOpRec{Action: "alloc", SubFlowID: op.SubFlowID, Bandwidth: op.Bandwidth, Gen: gen})
		case signalling.OpRelease:
			_, gen, err := ep.Release(op.SubFlowID)
			if err != nil {
				results[i].Reason = err.Error()
				granted = false
				b.m.tunnelDenied.Inc()
				continue
			}
			results[i].Granted = true
			b.m.tunnelReleases.Inc()
			applied = append(applied, tunnelOpRec{Action: "release", SubFlowID: op.SubFlowID, Gen: gen})
		}
	}
	// Dense success path: a fully-granted batch answers with the single
	// granted bit — the sender knows its own op list, so per-op results
	// only enumerate when some op was denied. On large batches the
	// results array would otherwise dominate the response frame.
	resp := &signalling.Message{Type: signalling.MsgResult, Result: &signalling.ResultPayload{Granted: granted}}
	if !granted {
		denied := 0
		for _, r := range results {
			if !r.Granted {
				denied++
			}
		}
		resp.Result.BatchResults = results
		resp.Result.Reason = fmt.Sprintf("%s: %d/%d ops denied", b.cfg.Domain, denied, len(results))
	}
	// Journal the outcome before releasing duplicate waiters, so a
	// retransmission never observes an unjournaled application — and,
	// in a replica group, withhold it until a majority holds the record.
	b.journalTunnelBatch(ep, payload.BatchID, applied, resp)
	b.replWaitCommit()
	b.tunnels.settle(st, resp)
	b.m.tunnelBatches.Inc()
	b.m.tunnelBatchSeconds.ObserveSince(t0)
	verdict := obs.VerdictGranted
	if !granted {
		verdict = obs.VerdictDenied
	}
	b.recordBatchEvent(payload, len(payload.Ops), verdict, resp.Result.Reason, t0)
	b.maybeCheckpoint()
	return resp
}

// AllocateTunnelFlow is the source-side API: allocate a sub-flow
// locally and at the destination over the direct channel. Intermediate
// domains are not contacted.
func (b *BB) AllocateTunnelFlow(tunnelRARID, subFlowID string, bw units.Bandwidth, user identity.DN) error {
	ep, ok := b.tunnels.reg.Get(tunnelRARID)
	if !ok {
		return fmt.Errorf("bb %s: no tunnel %s", b.cfg.Domain, tunnelRARID)
	}
	if err := b.localAlloc(ep, subFlowID, bw); err != nil {
		b.m.tunnelDenied.Inc()
		return err
	}
	resp, _, err := b.callPeer(ep.PeerBB, &signalling.Message{
		Type: signalling.MsgTunnelAlloc,
		TunnelAlloc: &signalling.TunnelAllocPayload{
			TunnelRARID: tunnelRARID,
			SubFlowID:   subFlowID,
			User:        user,
			Bandwidth:   int64(bw),
		},
	})
	if err != nil {
		// Roll back the local half; the destination may or may not
		// have allocated, so best-effort release there too.
		b.localRelease(ep, subFlowID)
		go func() {
			if client, cerr := b.clientFor(ep.PeerBB); cerr == nil {
				_, _ = client.CallTimeout(&signalling.Message{
					Type:          signalling.MsgTunnelRelease,
					TunnelRelease: &signalling.TunnelReleasePayload{TunnelRARID: tunnelRARID, SubFlowID: subFlowID},
				}, b.cfg.CallTimeout)
			}
		}()
		return fmt.Errorf("bb %s: tunnel alloc at destination: %w", b.cfg.Domain, err)
	}
	if resp.Result == nil || !resp.Result.Granted {
		b.localRelease(ep, subFlowID)
		reason := "no result"
		if resp.Result != nil {
			reason = resp.Result.Reason
		}
		return fmt.Errorf("bb %s: destination refused sub-flow: %s", b.cfg.Domain, reason)
	}
	b.m.tunnelAllocs.Inc()
	return nil
}

// ReleaseTunnelFlow frees a sub-flow at both ends.
func (b *BB) ReleaseTunnelFlow(tunnelRARID, subFlowID string) error {
	ep, ok := b.tunnels.reg.Get(tunnelRARID)
	if !ok {
		return fmt.Errorf("bb %s: no tunnel %s", b.cfg.Domain, tunnelRARID)
	}
	_, gen, err := ep.Release(subFlowID)
	if err != nil {
		return err
	}
	b.journalTunnelRelease(ep, subFlowID, gen)
	b.m.tunnelReleases.Inc()
	resp, _, err := b.callPeer(ep.PeerBB, &signalling.Message{
		Type:          signalling.MsgTunnelRelease,
		TunnelRelease: &signalling.TunnelReleasePayload{TunnelRARID: tunnelRARID, SubFlowID: subFlowID},
	})
	if err != nil {
		return err
	}
	if resp.Result == nil || !resp.Result.Granted {
		return fmt.Errorf("bb %s: destination refused release", b.cfg.Domain)
	}
	return nil
}

// localAlloc / localRelease mutate the local endpoint half of a
// two-ended sub-flow operation and journal the mutation; rollbacks go
// through them too, so a recovered broker always agrees with the live
// one.
func (b *BB) localAlloc(ep *tunnel.Endpoint, subID string, bw units.Bandwidth) error {
	gen, err := ep.Allocate(subID, bw)
	if err != nil {
		return err
	}
	b.journalTunnelAlloc(ep, subID, bw, gen)
	return nil
}

func (b *BB) localRelease(ep *tunnel.Endpoint, subID string) {
	if _, gen, err := ep.Release(subID); err == nil {
		b.journalTunnelRelease(ep, subID, gen)
	}
}

// TunnelBatch is the batched source-side API: apply many alloc/release
// ops locally, ship the locally-successful subset to the destination in
// one MsgTunnelBatch, and reconcile — an op succeeds only when both
// ends applied it; local halves of remotely-denied ops are rolled back
// (a denied alloc is released, a denied release is re-admitted with its
// original bandwidth). A transport failure rolls back every local op;
// the destination's replay cache makes the retransmitted batch id safe.
// The returned results are in op order.
func (b *BB) TunnelBatch(tunnelRARID string, ops []signalling.TunnelOp, user identity.DN) ([]signalling.TunnelOpResult, error) {
	t0 := time.Now()
	ep, ok := b.tunnels.reg.Get(tunnelRARID)
	if !ok {
		return nil, fmt.Errorf("bb %s: no tunnel %s", b.cfg.Domain, tunnelRARID)
	}
	payload := &signalling.TunnelBatchPayload{
		TunnelRARID: tunnelRARID,
		BatchID:     signalling.NewBatchID(),
		User:        user,
		Ops:         ops,
	}
	if err := payload.Validate(); err != nil {
		return nil, err
	}
	// Source-side batches enter the network here, so this is where the
	// flight-recorder dice roll happens; the decision and trace id ride
	// the payload to the far endpoint.
	if b.sampler.Sample() {
		payload.Sampled = true
		payload.TraceID = obs.NewTraceID()
	}
	results := make([]signalling.TunnelOpResult, len(ops))
	// Local halves first; only locally-admitted ops travel to the peer.
	remote := make([]signalling.TunnelOp, 0, len(ops))
	remoteIdx := make([]int, 0, len(ops))
	released := make(map[string]units.Bandwidth, len(ops)) // undo data for remote-denied releases
	for i, op := range ops {
		results[i].SubFlowID = op.SubFlowID
		switch op.Action {
		case signalling.OpAlloc:
			if err := b.localAlloc(ep, op.SubFlowID, units.Bandwidth(op.Bandwidth)); err != nil {
				results[i].Reason = err.Error()
				b.m.tunnelDenied.Inc()
				continue
			}
		case signalling.OpRelease:
			bw, gen, err := ep.Release(op.SubFlowID)
			if err != nil {
				results[i].Reason = err.Error()
				b.m.tunnelDenied.Inc()
				continue
			}
			b.journalTunnelRelease(ep, op.SubFlowID, gen)
			released[op.SubFlowID] = bw
		}
		remote = append(remote, op)
		remoteIdx = append(remoteIdx, i)
	}
	if len(remote) == 0 {
		// Every op failed locally: nothing travelled, the batch settles
		// here as a denial.
		b.recordBatchEvent(payload, len(ops), obs.VerdictDenied, firstReason(results), t0)
		return results, nil
	}
	payload.Ops = remote
	resp, _, err := b.callPeer(ep.PeerBB, &signalling.Message{Type: signalling.MsgTunnelBatch, TunnelBatch: payload})
	if err != nil || resp.Result == nil {
		// Unknown destination state: undo every local half. The batch id
		// in the destination's replay cache keeps any successful
		// application there answerable; a fresh batch must use a fresh id.
		for _, i := range remoteIdx {
			b.undoLocalOp(ep, ops[i], released)
		}
		if err == nil {
			err = fmt.Errorf("destination sent no result")
		}
		b.recordBatchEvent(payload, len(ops), obs.VerdictError, err.Error(), t0)
		return nil, fmt.Errorf("bb %s: tunnel batch at destination: %w", b.cfg.Domain, err)
	}
	for k, i := range remoteIdx {
		var rr *signalling.TunnelOpResult
		if k < len(resp.Result.BatchResults) {
			rr = &resp.Result.BatchResults[k]
		}
		if resp.Result.Granted || (rr != nil && rr.Granted) {
			results[i].Granted = true
			if ops[i].Action == signalling.OpAlloc {
				b.m.tunnelAllocs.Inc()
			} else {
				b.m.tunnelReleases.Inc()
			}
			continue
		}
		// Destination refused (or the whole batch was refused before any
		// op ran, leaving no per-op results): roll the local half back.
		results[i].Reason = resp.Result.Reason
		if rr != nil && rr.Reason != "" {
			results[i].Reason = rr.Reason
		}
		b.m.tunnelDenied.Inc()
		b.undoLocalOp(ep, ops[i], released)
	}
	b.m.tunnelBatches.Inc()
	if b.cfg.Recorder != nil {
		verdict := obs.VerdictGranted
		for _, r := range results {
			if !r.Granted {
				verdict = obs.VerdictDenied
				break
			}
		}
		b.recordBatchEvent(payload, len(ops), verdict, firstReason(results), t0)
	}
	return results, nil
}

// firstReason surfaces the first per-op denial reason of a batch.
func firstReason(results []signalling.TunnelOpResult) string {
	for _, r := range results {
		if !r.Granted && r.Reason != "" {
			return r.Reason
		}
	}
	return ""
}

// undoLocalOp reverses the local half of a batch op whose remote half
// failed.
func (b *BB) undoLocalOp(ep *tunnel.Endpoint, op signalling.TunnelOp, released map[string]units.Bandwidth) {
	switch op.Action {
	case signalling.OpAlloc:
		b.localRelease(ep, op.SubFlowID)
	case signalling.OpRelease:
		if bw, ok := released[op.SubFlowID]; ok {
			_ = b.localAlloc(ep, op.SubFlowID, bw)
		}
	}
}

// Tunnel exposes a tunnel endpoint for inspection.
func (b *BB) Tunnel(rarID string) (*tunnel.Endpoint, bool) { return b.tunnels.reg.Get(rarID) }
