package bb

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"e2eqos/internal/core"
	"e2eqos/internal/envelope"
	"e2eqos/internal/identity"
	"e2eqos/internal/obs"
	"e2eqos/internal/policysrv"
	"e2eqos/internal/resv"
	"e2eqos/internal/signalling"
	"e2eqos/internal/tunnel"
	"e2eqos/internal/units"
)

// tunnelRegistry wraps the tunnel package registry and keeps the batch
// replay cache: per-batch outcomes keyed (tunnel RAR, batch id), with
// the same in-flight dedup scheme the RAR cache uses — a concurrent
// retransmission finds the first copy's placeholder and waits for its
// done channel instead of re-applying ops.
type tunnelRegistry struct {
	reg *tunnel.Registry

	mu      sync.Mutex
	batches map[string]*batchState
}

// batchState is one batch's replay-cache entry.
type batchState struct {
	// done is closed once the batch has been applied and its outcome
	// recorded; duplicates arriving mid-flight wait on it.
	done chan struct{}
	// outcome is replayed verbatim on retransmission.
	outcome *signalling.Message
	// epoch pins the entry to a specific registration of the tunnel
	// RAR id, so snapshots and teardown can tell stale entries apart.
	epoch int64
	rarID string
	id    string
}

func batchKey(rarID, batchID string) string { return rarID + "\x00" + batchID }

func newTunnelRegistry() *tunnelRegistry {
	return &tunnelRegistry{reg: tunnel.NewRegistry(), batches: make(map[string]*batchState)}
}

// begin registers a batch placeholder, or returns the existing entry
// with dup=true.
func (t *tunnelRegistry) begin(rarID, batchID string, epoch int64) (st *batchState, dup bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if st, ok := t.batches[batchKey(rarID, batchID)]; ok {
		return st, true
	}
	st = &batchState{done: make(chan struct{}), epoch: epoch, rarID: rarID, id: batchID}
	t.batches[batchKey(rarID, batchID)] = st
	return st, false
}

// settle records a batch outcome and releases any waiting duplicates.
func (t *tunnelRegistry) settle(st *batchState, outcome *signalling.Message) {
	t.mu.Lock()
	st.outcome = outcome
	t.mu.Unlock()
	close(st.done)
}

// outcomeOf reads a settled outcome (nil while in flight).
func (t *tunnelRegistry) outcomeOf(st *batchState) *signalling.Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	return st.outcome
}

// restoreBatch repopulates a replay-cache entry during journal
// recovery; done comes pre-closed because the batch settled in a
// previous life.
func (t *tunnelRegistry) restoreBatch(rarID string, epoch int64, batchID string, outcome *signalling.Message) {
	done := make(chan struct{})
	close(done)
	t.mu.Lock()
	t.batches[batchKey(rarID, batchID)] = &batchState{
		done: done, outcome: outcome, epoch: epoch, rarID: rarID, id: batchID,
	}
	t.mu.Unlock()
}

// dropBatches evicts replay-cache entries for a torn-down tunnel
// registration (matching epoch only — a re-established tunnel keeps
// its own batches).
func (t *tunnelRegistry) dropBatches(rarID string, epoch int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for k, st := range t.batches {
		if st.rarID == rarID && st.epoch == epoch {
			delete(t.batches, k)
		}
	}
}

// resetBatches replaces the whole replay cache with a snapshot's
// settled entries — a replication follower installing a leader
// snapshot. In-flight entries are discarded with it: a follower never
// has batches of its own in flight.
func (t *tunnelRegistry) resetBatches(snaps []tunnelBatchSnap) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.batches = make(map[string]*batchState, len(snaps))
	for _, bs := range snaps {
		done := make(chan struct{})
		close(done)
		t.batches[batchKey(bs.RARID, bs.BatchID)] = &batchState{
			done: done, outcome: bs.Outcome, epoch: bs.Epoch, rarID: bs.RARID, id: bs.BatchID,
		}
	}
}

// settledBatches snapshots the replay cache for journal rotation,
// sorted for deterministic bytes. In-flight entries are skipped: they
// journal themselves when they settle, after the rotation completes.
func (t *tunnelRegistry) settledBatches() []tunnelBatchSnap {
	t.mu.Lock()
	out := make([]tunnelBatchSnap, 0, len(t.batches))
	for _, st := range t.batches {
		if st.outcome == nil {
			continue
		}
		out = append(out, tunnelBatchSnap{RARID: st.rarID, Epoch: st.epoch, BatchID: st.id, Outcome: st.outcome})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].RARID != out[j].RARID {
			return out[i].RARID < out[j].RARID
		}
		return out[i].BatchID < out[j].BatchID
	})
	return out
}

// Handle implements signalling.Handler: the broker's message dispatch.
// On a replica-group follower every mutating message redirects to the
// leader; status reads and replication traffic are served locally.
func (b *BB) Handle(peer signalling.Peer, msg *signalling.Message) *signalling.Message {
	if b.repl.isFollower() {
		switch msg.Type {
		case signalling.MsgReserve, signalling.MsgCancel, signalling.MsgTunnelAlloc,
			signalling.MsgTunnelRelease, signalling.MsgTunnelBatch:
			return b.redirect()
		}
	}
	switch msg.Type {
	case signalling.MsgReserve:
		if msg.Reserve == nil {
			return signalling.ErrorResult("reserve message without payload")
		}
		return b.handleReserve(peer, msg.Reserve)
	case signalling.MsgCancel:
		if msg.Cancel == nil {
			return signalling.ErrorResult("cancel message without payload")
		}
		return b.handleCancel(peer, msg.Cancel)
	case signalling.MsgTunnelAlloc:
		if msg.TunnelAlloc == nil {
			return signalling.ErrorResult("tunnel-alloc message without payload")
		}
		return b.handleTunnelAlloc(peer, msg.TunnelAlloc)
	case signalling.MsgTunnelRelease:
		if msg.TunnelRelease == nil {
			return signalling.ErrorResult("tunnel-release message without payload")
		}
		return b.handleTunnelRelease(peer, msg.TunnelRelease)
	case signalling.MsgTunnelBatch:
		if msg.TunnelBatch == nil {
			return signalling.ErrorResult("tunnel-batch message without payload")
		}
		return b.handleTunnelBatch(peer, msg.TunnelBatch)
	case signalling.MsgStatus:
		if msg.Status == nil {
			return signalling.ErrorResult("status message without payload")
		}
		return b.handleStatus(msg.Status)
	case signalling.MsgJournalStream:
		if msg.JournalStream == nil {
			return signalling.ErrorResult("journal-stream message without payload")
		}
		return b.handleJournalStream(peer, msg.JournalStream)
	default:
		return signalling.ErrorResult(fmt.Sprintf("unsupported message type %q", msg.Type))
	}
}

// deny builds a denied result carrying this domain's signed refusal,
// implementing "Whenever a request is denied by one domain, the event
// is propagated upstream to inform the user of the reason for the
// denial."
func (b *BB) deny(rarID, reason string) *signalling.Message {
	resp := signalling.ErrorResult(reason)
	if a, err := b.signApproval(rarID, "", false, reason); err == nil {
		resp.Result.Approvals = []signalling.DomainApproval{a}
	}
	return resp
}

// finishTrace stamps this hop's span onto the response of a traced
// reserve: total time, verdict (derived from the result unless the
// processing already pinned one), and the trace id echo. Spans from
// hops below are already in the result; this hop's span goes on top,
// mirroring how approvals stack on the return path.
func finishTrace(resp *signalling.Message, span *obs.Span, traceID string, t0 time.Time) {
	if span == nil || resp == nil || resp.Result == nil {
		return
	}
	span.TotalNS = time.Since(t0).Nanoseconds()
	if span.Verdict == "" {
		if resp.Result.Granted {
			span.Verdict = obs.VerdictGranted
		} else {
			span.Verdict = obs.VerdictDenied
			span.Reason = resp.Result.Reason
		}
	}
	resp.Result.TraceID = traceID
	resp.Result.Trace = append(resp.Result.Trace, *span)
}

func (b *BB) handleReserve(peer signalling.Peer, payload *signalling.ReservePayload) *signalling.Message {
	t0 := time.Now()
	b.m.received.Inc()
	// Tracing is requester-opt-in: without a trace id no span is
	// built and the traced branches below reduce to nil checks.
	var span *obs.Span
	if payload.TraceID != "" {
		span = &obs.Span{Domain: b.cfg.Domain, BB: string(b.cfg.Key.DN)}
	}
	env, err := payload.Envelope()
	if err != nil {
		b.m.denied.Inc()
		b.log.Warn("reserve: malformed envelope", obs.AttrPeer, string(peer.DN), "err", err)
		resp := signalling.ErrorResult(fmt.Sprintf("malformed envelope: %v", err))
		finishTrace(resp, span, payload.TraceID, t0)
		b.recordReserveEvent("", "", payload, resp, t0)
		return resp
	}
	now := b.cfg.Clock()
	tVerify := time.Now()
	verified, err := b.proto.Verify(env, peer.DN, peer.CertDER, now)
	verifyNS := time.Since(tVerify).Nanoseconds()
	if span != nil {
		span.VerifyNS = verifyNS
	}
	if err != nil {
		b.m.denied.Inc()
		b.log.Warn("reserve: verification failed", obs.AttrPeer, string(peer.DN),
			obs.AttrTrace, payload.TraceID, "err", err)
		resp := signalling.ErrorResult(fmt.Sprintf("verification failed: %v", err))
		finishTrace(resp, span, payload.TraceID, t0)
		b.recordReserveEvent("", "", payload, resp, t0)
		return resp
	}
	spec := verified.Spec

	// Flight-recorder sampling: only the ingress hop — the broker that
	// took the RAR from the user — rolls the dice, then the decision
	// rides the signalling payload so every hop below records the same
	// request (per-hop dice would compound the rate down the chain).
	// Sampled requests get a span even without requester opt-in tracing,
	// so the recorded event carries the full per-hop timeline; a request
	// the requester already traces keeps its trace id and just gains the
	// sampled bit.
	if !payload.Sampled && len(verified.Path) == 1 && b.sampler.Sample() {
		payload.Sampled = true
		if payload.TraceID == "" {
			payload.TraceID = obs.NewTraceID()
		}
	}
	if span == nil && payload.Sampled {
		span = &obs.Span{Domain: b.cfg.Domain, BB: string(b.cfg.Key.DN), VerifyNS: verifyNS}
	}

	// Duplicate RAR ids would corrupt cancellation state. A duplicate
	// is (almost always) a retransmission from an upstream hop that
	// lost the response: wait out any still-in-flight first copy, then
	// replay its outcome verbatim, so retries are idempotent
	// (re-admitting would double-book, denying a granted chain would
	// strand it). The placeholder registered for fresh RARs is what
	// lets a concurrent retransmission find the first copy.
	b.mu.Lock()
	st, dup := b.routes[spec.RARID]
	if !dup {
		b.rarEpoch++
		st = &rarState{spec: spec, done: make(chan struct{}), epoch: b.rarEpoch}
		b.routes[spec.RARID] = st
	}
	b.mu.Unlock()
	if dup {
		if st.done != nil {
			<-st.done
		}
		b.mu.Lock()
		outcome := st.outcome
		b.mu.Unlock()
		b.m.replays.Inc()
		b.log.Info("reserve: replaying recorded outcome for retransmitted RAR",
			obs.AttrRAR, spec.RARID, obs.AttrPeer, string(peer.DN), obs.AttrTrace, payload.TraceID)
		if outcome != nil {
			// The recorded outcome already carries this hop's span (and
			// everything below it), so a replay never duplicates spans.
			resp := *outcome // shallow copy: Serve stamps the per-call ID
			return &resp
		}
		return b.deny(spec.RARID, fmt.Sprintf("%s: duplicate RAR id %s", b.cfg.Domain, spec.RARID))
	}
	resp := b.processReserve(peer, payload, env, verified, now, span)
	if resp.Result != nil {
		if resp.Result.Granted {
			b.m.granted.Inc()
			if len(verified.Path) == 1 {
				// This hop is the source domain: its handle time IS the
				// end-to-end grant time the user observes.
				b.m.grantSeconds.ObserveSince(t0)
			}
		} else {
			b.m.denied.Inc()
		}
	}
	b.m.handleSeconds.ObserveSince(t0)
	// Stamp the span before recording the outcome, so replays return
	// the identical trace.
	finishTrace(resp, span, payload.TraceID, t0)
	b.logReserveVerdict(spec, payload.TraceID, resp, time.Since(t0))
	b.recordReserveEvent(spec.RARID, string(spec.User), payload, resp, t0)
	b.mu.Lock()
	st.outcome = resp
	b.mu.Unlock()
	// Journal the settled entry before releasing waiters, so a cancel
	// that was blocked on done always journals after this record.
	b.journalRAR(spec.RARID, st)
	// Group commit: in a replica group the outcome is withheld until a
	// majority holds everything up to and including that record, so a
	// grant the caller ever saw survives this leader's death.
	b.replWaitCommit()
	close(st.done)
	b.maybeCheckpoint()
	return resp
}

// logReserveVerdict emits the one per-reserve log record: grants at
// info, denials (which were silent before the obs layer) at warn.
func (b *BB) logReserveVerdict(spec *core.Spec, traceID string, resp *signalling.Message, took time.Duration) {
	if resp.Result == nil {
		return
	}
	if resp.Result.Granted {
		b.log.Info("reserve granted",
			obs.AttrRAR, spec.RARID, obs.AttrTrace, traceID,
			"user", string(spec.User), "bw", spec.Bandwidth.String(),
			"dest", spec.DestDomain, "handle", resp.Result.Handle, "took", took)
		return
	}
	b.log.Warn("reserve denied",
		obs.AttrRAR, spec.RARID, obs.AttrTrace, traceID,
		"user", string(spec.User), "bw", spec.Bandwidth.String(),
		"dest", spec.DestDomain, "reason", resp.Result.Reason, "took", took)
}

// rollback cancels an optimistic local admission that must not
// survive (downstream denial, transport failure, encode error) and
// accounts for it.
func (b *BB) rollback(handle, rarID, why string) {
	_ = b.table.Cancel(handle)
	b.m.rollbacks.Inc()
	b.log.Info("reserve: rolled back local admission",
		obs.AttrRAR, rarID, "handle", handle, "why", why)
}

// processReserve runs the admission pipeline for a first-seen RAR:
// upstream SLA check, policy decision, local admission, and downstream
// forwarding. The caller records the returned message as the RAR's
// replayable outcome. span, non-nil only on traced reserves, collects
// where the hop's time went; processReserve pins span.Verdict only
// when the result alone cannot distinguish the failure mode (transport
// error vs. own denial vs. rolled-back admission).
func (b *BB) processReserve(peer signalling.Peer, payload *signalling.ReservePayload, env *envelope.Envelope, verified *core.VerifiedRequest, now time.Time, span *obs.Span) *signalling.Message {
	spec := verified.Spec

	// Identify the upstream entity. A single-layer chain came from the
	// user directly; otherwise the outermost signer is the upstream BB.
	fromUser := len(verified.Path) == 1
	if !fromUser {
		upBB := verified.Path[len(verified.Path)-1]
		upDomain, ok := b.domainOfBB(upBB)
		if !ok {
			return b.deny(spec.RARID, fmt.Sprintf("%s: unknown upstream broker %s", b.cfg.Domain, upBB))
		}
		// SLA conformance: the premium aggregate entering from the
		// upstream peer must stay inside the contracted profile.
		contract := b.cfg.InboundSLAs[upDomain]
		if contract == nil {
			return b.deny(spec.RARID, fmt.Sprintf("%s: no SLA with upstream domain %s", b.cfg.Domain, upDomain))
		}
		if !contract.Valid(now) {
			return b.deny(spec.RARID, fmt.Sprintf("%s: SLA with %s not valid", b.cfg.Domain, upDomain))
		}
		committed := b.cfg.Capacity - b.table.Available(spec.Window)
		if err := contract.Conforms(committed, spec.Bandwidth); err != nil {
			return b.deny(spec.RARID, fmt.Sprintf("%s: %v", b.cfg.Domain, err))
		}
	}

	// Consult the policy server (§5): validated assertions,
	// capability-chain verification and local policy.
	q := &policysrv.Query{
		User:               spec.User,
		Bandwidth:          spec.Bandwidth,
		Window:             spec.Window,
		Available:          b.table.Available(spec.Window),
		SourceDomain:       spec.SourceDomain,
		DestDomain:         spec.DestDomain,
		Assertions:         spec.Assertions,
		CapabilityChain:    verified.Capabilities,
		RequireRestriction: spec.RestrictionFor(),
		LinkedReservations: b.validateLinkedHandles(spec),
	}
	tPolicy := time.Now()
	res, err := b.cfg.Policy.Decide(q)
	if span != nil {
		span.PolicyNS = time.Since(tPolicy).Nanoseconds()
	}
	if err != nil {
		return b.deny(spec.RARID, fmt.Sprintf("%s: policy server: %v", b.cfg.Domain, err))
	}
	if !res.Decision.Granted() {
		return b.deny(spec.RARID, fmt.Sprintf("%s: policy denied: %s", b.cfg.Domain, res.Decision.Reason))
	}

	// Admission control against the local reservation table.
	tAdmit := time.Now()
	r, err := b.table.Admit(resv.AdmitRequest{
		User:      spec.User,
		SrcHost:   spec.SrcHost,
		DstHost:   spec.DstHost,
		Bandwidth: spec.Bandwidth,
		Window:    spec.Window,
		Tunnel:    spec.Tunnel,
	})
	if span != nil {
		span.AdmitNS = time.Since(tAdmit).Nanoseconds()
	}
	if err != nil {
		return b.deny(spec.RARID, fmt.Sprintf("%s: admission: %v", b.cfg.Domain, err))
	}

	isDest := spec.DestDomain == b.cfg.Domain
	local := payload.Mode == signalling.ModeLocal

	if isDest || local {
		return b.finishGrant(peer, verified, r, fromUser, isDest && !local)
	}

	// Forward downstream (hop-by-hop).
	nextDomain, err := b.cfg.Topo.NextHop(b.cfg.Domain, spec.DestDomain)
	if err != nil {
		b.rollback(r.Handle, spec.RARID, "no route")
		return b.deny(spec.RARID, fmt.Sprintf("%s: routing: %v", b.cfg.Domain, err))
	}
	nd, _ := b.cfg.Topo.Domain(nextDomain)
	nextCert := b.cfg.PeerCerts[nd.BBDN]
	if nextCert == nil {
		b.rollback(r.Handle, spec.RARID, "no next-hop certificate")
		return b.deny(spec.RARID, fmt.Sprintf("%s: no certificate for next hop %s", b.cfg.Domain, nd.BBDN))
	}
	extended, err := b.proto.Extend(env, peer.CertDER, verified, nextCert, res.Additions)
	if err != nil {
		b.rollback(r.Handle, spec.RARID, "extend failed")
		return b.deny(spec.RARID, fmt.Sprintf("%s: extend: %v", b.cfg.Domain, err))
	}
	fwd, err := signalling.NewReserveMessage(signalling.ModeEndToEnd, extended)
	if err != nil {
		b.rollback(r.Handle, spec.RARID, "encode failed")
		return b.deny(spec.RARID, fmt.Sprintf("%s: encode: %v", b.cfg.Domain, err))
	}
	// The trace id and sampling decision ride the whole chain so every
	// hop below records a span into the same trace.
	fwd.Reserve.TraceID = payload.TraceID
	fwd.Reserve.Sampled = payload.Sampled
	b.m.forwarded.Inc()
	tDown := time.Now()
	downstream, retries, err := b.callPeer(nd.BBDN, fwd)
	b.m.downstreamSeconds.ObserveSince(tDown)
	if span != nil {
		span.DownstreamNS = time.Since(tDown).Nanoseconds()
		span.Retries = retries
	}
	if err != nil {
		// Roll back the optimistic local admission and, because the
		// downstream outcome is unknown (the hop may have admitted the
		// reservation and the response was lost), fire a best-effort
		// cancel so no hop below the failure strands bandwidth.
		b.rollback(r.Handle, spec.RARID, "downstream call failed")
		b.cancelDownstream(nd.BBDN, spec.RARID)
		if span != nil {
			span.Verdict = obs.VerdictError
			span.Reason = err.Error()
		}
		b.log.Error("reserve: downstream call failed",
			obs.AttrRAR, spec.RARID, obs.AttrPeer, string(nd.BBDN),
			obs.AttrTrace, payload.TraceID, "retries", retries, "err", err)
		return b.deny(spec.RARID, fmt.Sprintf("%s: downstream call: %v", b.cfg.Domain, err))
	}
	if downstream.Result == nil {
		b.rollback(r.Handle, spec.RARID, "downstream sent no result")
		b.cancelDownstream(nd.BBDN, spec.RARID)
		if span != nil {
			span.Verdict = obs.VerdictError
			span.Reason = "downstream sent no result"
		}
		return b.deny(spec.RARID, fmt.Sprintf("%s: downstream sent no result", b.cfg.Domain))
	}
	if !downstream.Result.Granted {
		// Roll back the optimistic local admission and propagate the
		// denial (with the downstream approvals/reasons) upstream.
		b.rollback(r.Handle, spec.RARID, "downstream denied")
		resp := signalling.ErrorResult(downstream.Result.Reason)
		resp.Result.Approvals = downstream.Result.Approvals
		resp.Result.Trace = downstream.Result.Trace
		if a, err := b.signApproval(spec.RARID, "", false, "upstream of denial"); err == nil {
			resp.Result.Approvals = append(resp.Result.Approvals, a)
		}
		if span != nil {
			// This hop did not refuse; the refusal is in a deeper span.
			span.Verdict = obs.VerdictRolledBack
		}
		return resp
	}

	// Tunnel registration happens before the grant is recorded: a RAR
	// id colliding with a live tunnel must surface as a denial (with the
	// admission rolled back and the downstream chain cancelled), not
	// silently shadow the existing endpoint.
	if fromUser && spec.Tunnel {
		if err := b.registerTunnelSource(spec, downstream.Result); err != nil {
			b.rollback(r.Handle, spec.RARID, "tunnel registration failed")
			b.cancelDownstream(nd.BBDN, spec.RARID)
			return b.deny(spec.RARID, fmt.Sprintf("%s: tunnel registration: %v", b.cfg.Domain, err))
		}
	}
	// Grant: record state, configure the data plane, stack our signed
	// approval on top of the downstream ones.
	b.recordRoute(spec, r.Handle, nd.BBDN, fromUser, peer)
	if fromUser {
		// Source domain: program the per-flow edge marker.
		b.installEdgeFlow(spec)
	}
	b.syncDataPlane()
	resp := &signalling.Message{Type: signalling.MsgResult, Result: &signalling.ResultPayload{
		Granted:    true,
		Handle:     r.Handle,
		Approvals:  downstream.Result.Approvals,
		PolicyInfo: downstream.Result.PolicyInfo,
		Trace:      downstream.Result.Trace,
	}}
	if a, err := b.signApproval(spec.RARID, r.Handle, true, ""); err == nil {
		resp.Result.Approvals = append(resp.Result.Approvals, a)
	}
	return resp
}

// finishGrant completes a grant at the destination domain (or a
// local-mode reservation).
func (b *BB) finishGrant(peer signalling.Peer, verified *core.VerifiedRequest, r *resv.Reservation, fromUser, isDest bool) *signalling.Message {
	spec := verified.Spec
	if isDest && spec.Tunnel {
		// Register before granting: a duplicate tunnel RAR id is a
		// denial, not a silent shadow of the live endpoint.
		if err := b.registerTunnelDest(verified, peer); err != nil {
			b.rollback(r.Handle, spec.RARID, "tunnel registration failed")
			return b.deny(spec.RARID, fmt.Sprintf("%s: tunnel registration: %v", b.cfg.Domain, err))
		}
	}
	b.recordRoute(spec, r.Handle, "", fromUser, peer)
	if fromUser {
		b.installEdgeFlow(spec)
	}
	b.syncDataPlane()
	resp := signalling.OKResult(r.Handle)
	if a, err := b.signApproval(spec.RARID, r.Handle, true, ""); err == nil {
		resp.Result.Approvals = []signalling.DomainApproval{a}
	}
	return resp
}

// recordRoute fills in the RAR's in-flight placeholder for
// cancellation and tunnel use. The entry itself was registered when
// the reserve arrived, so retransmissions and cancels can find it.
func (b *BB) recordRoute(spec *core.Spec, handle string, next identity.DN, fromUser bool, peer signalling.Peer) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.routes[spec.RARID]
	if !ok {
		return
	}
	st.handle = handle
	st.next = next
	st.tunnel = spec.Tunnel
	st.sourceBB = peer.DN
	st.spec = spec
	_ = fromUser
}

// validateLinkedHandles checks the co-reservation references against
// the local resource managers (destination-domain semantics of
// Figure 6: HasValidCPUResv(RAR)).
func (b *BB) validateLinkedHandles(spec *core.Spec) map[string]bool {
	out := make(map[string]bool)
	for resource, handle := range spec.LinkedHandles {
		switch resource {
		case "cpu":
			if b.cfg.CPU != nil && b.cfg.CPU.ValidDuring(handle, spec.Window) {
				out["cpu"] = true
			}
		case "disk":
			if b.cfg.Disk != nil && b.cfg.Disk.Valid(handle, spec.Window.Start) {
				out["disk"] = true
			}
		}
	}
	return out
}

func (b *BB) handleCancel(peer signalling.Peer, payload *signalling.CancelPayload) *signalling.Message {
	b.m.cancels.Inc()
	b.mu.Lock()
	st, ok := b.routes[payload.RARID]
	b.mu.Unlock()
	if !ok {
		return signalling.ErrorResult(fmt.Sprintf("%s: unknown RAR %s", b.cfg.Domain, payload.RARID))
	}
	// If the reserve that created this entry is still in flight (an
	// upstream hop gave up on it and is now cancelling), wait for it to
	// settle so its admission — and its recorded downstream hop — are
	// visible to cancel.
	if st.done != nil {
		<-st.done
	}
	b.mu.Lock()
	if cur, still := b.routes[payload.RARID]; !still || cur != st {
		b.mu.Unlock()
		return signalling.ErrorResult(fmt.Sprintf("%s: unknown RAR %s", b.cfg.Domain, payload.RARID))
	}
	delete(b.routes, payload.RARID)
	b.mu.Unlock()
	// Journal the route removal even if the table cancel below fails:
	// the entry is gone from the live map either way, and a recovered
	// broker must agree.
	b.journalRARCancel(payload.RARID, st.epoch)
	// Tear the tunnel endpoint down before the table cancel can bail
	// out: the route entry is already gone, and a stale endpoint left
	// behind would collide with a re-establishment of the same RAR id.
	if ep, live := b.tunnels.reg.Get(payload.RARID); live {
		b.tunnels.reg.Remove(payload.RARID)
		b.tunnels.dropBatches(payload.RARID, ep.Epoch)
		b.journalTunnelRemove(payload.RARID, ep.Epoch)
	}
	b.removeEdgeFlow(payload.RARID)
	if err := b.table.Cancel(st.handle); err != nil {
		return signalling.ErrorResult(fmt.Sprintf("%s: %v", b.cfg.Domain, err))
	}
	b.syncDataPlane()
	// Propagate downstream along the recorded path (best effort, under
	// the call deadline: a dead hop must not wedge the cancel chain).
	// If the synchronous attempt fails, hand the cancel to the
	// persistent async path so hops below the failure don't stay booked.
	if st.next != "" {
		if _, _, err := b.callPeer(st.next, &signalling.Message{
			Type:   signalling.MsgCancel,
			Cancel: &signalling.CancelPayload{RARID: payload.RARID},
		}); err != nil {
			b.cancelDownstream(st.next, payload.RARID)
		}
	}
	b.log.Info("cancel: released reservation",
		obs.AttrRAR, payload.RARID, obs.AttrPeer, string(peer.DN), "handle", st.handle)
	// The cancel's own records (route removal, table cancel, tunnel
	// teardown) join the group commit before the caller hears back.
	b.replWaitCommit()
	b.maybeCheckpoint()
	return signalling.OKResult(st.handle)
}

func (b *BB) handleStatus(payload *signalling.StatusPayload) *signalling.Message {
	b.mu.Lock()
	st, ok := b.routes[payload.RARID]
	b.mu.Unlock()
	if !ok {
		return signalling.ErrorResult(fmt.Sprintf("%s: unknown RAR %s", b.cfg.Domain, payload.RARID))
	}
	r, ok := b.table.Lookup(st.handle)
	if !ok {
		return signalling.ErrorResult(fmt.Sprintf("%s: handle %s vanished", b.cfg.Domain, st.handle))
	}
	resp := signalling.OKResult(st.handle)
	resp.Result.PolicyInfo = map[string]string{
		"status":    r.Status.String(),
		"bandwidth": r.Bandwidth.String(),
		"window":    r.Window.String(),
	}
	return resp
}

// registerTunnelDest records the tunnel endpoint at the destination
// domain; the authenticated source broker (the first BB on the path)
// is the only entity allowed to drive sub-flow allocations over the
// direct channel. A duplicate RAR id — the establishing reservation of
// a still-live tunnel — is an error the caller must surface as a
// denial, not swallow.
func (b *BB) registerTunnelDest(verified *core.VerifiedRequest, peer signalling.Peer) error {
	spec := verified.Spec
	sourceBB := peer.DN
	if len(verified.Path) > 1 {
		sourceBB = verified.Path[1] // [user, BB_src, ...]
	}
	ep, err := tunnel.NewEndpoint(spec.RARID, spec.Bandwidth, spec.Window, sourceBB, spec.User)
	if err != nil {
		return err
	}
	return b.registerTunnel(ep)
}

// registerTunnelSource records the tunnel endpoint at the source
// domain, remembering the destination broker from the signed
// approvals so sub-flow requests can go directly to it.
func (b *BB) registerTunnelSource(spec *core.Spec, result *signalling.ResultPayload) error {
	var destBB identity.DN
	for _, a := range result.Approvals {
		if a.Domain == spec.DestDomain && a.Granted {
			destBB = a.BBDN
			break
		}
	}
	ep, err := tunnel.NewEndpoint(spec.RARID, spec.Bandwidth, spec.Window, destBB, spec.User)
	if err != nil {
		return err
	}
	return b.registerTunnel(ep)
}

// registerTunnel stamps the endpoint with a fresh registration epoch,
// adds it to the registry (duplicate RAR ids are refused) and journals
// the establishment.
func (b *BB) registerTunnel(ep *tunnel.Endpoint) error {
	b.mu.Lock()
	b.rarEpoch++
	ep.Epoch = b.rarEpoch
	b.mu.Unlock()
	if err := b.tunnels.reg.Add(ep); err != nil {
		return err
	}
	b.journalTunnel(ep)
	return nil
}

// RegisterTunnelEndpoint registers a pre-provisioned tunnel endpoint at
// this broker (an out-of-band established aggregate); the registration
// is journaled like one created through the signalling path. Duplicate
// RAR ids are refused.
func (b *BB) RegisterTunnelEndpoint(ep *tunnel.Endpoint) error {
	return b.registerTunnel(ep)
}

// tunnelFor resolves a tunnel endpoint and checks that the peer is
// authorized on it: only the broker authenticated during establishment
// (or the tunnel owner, for the source side) may drive sub-flows.
func (b *BB) tunnelFor(peer signalling.Peer, rarID string) (*tunnel.Endpoint, string) {
	ep, ok := b.tunnels.reg.Get(rarID)
	if !ok {
		return nil, fmt.Sprintf("%s: no tunnel %s", b.cfg.Domain, rarID)
	}
	if peer.DN != ep.PeerBB && peer.DN != ep.Owner {
		return nil, fmt.Sprintf("%s: %s is not authorized on tunnel %s", b.cfg.Domain, peer.DN, rarID)
	}
	return ep, ""
}

func (b *BB) handleTunnelAlloc(peer signalling.Peer, payload *signalling.TunnelAllocPayload) *signalling.Message {
	ep, reason := b.tunnelFor(peer, payload.TunnelRARID)
	if ep == nil {
		return signalling.ErrorResult(reason)
	}
	gen, err := ep.Allocate(payload.SubFlowID, units.Bandwidth(payload.Bandwidth))
	if err != nil {
		b.m.tunnelDenied.Inc()
		return signalling.ErrorResult(err.Error())
	}
	b.m.tunnelAllocs.Inc()
	b.journalTunnelAlloc(ep, payload.SubFlowID, units.Bandwidth(payload.Bandwidth), gen)
	return signalling.OKResult(payload.SubFlowID)
}

func (b *BB) handleTunnelRelease(peer signalling.Peer, payload *signalling.TunnelReleasePayload) *signalling.Message {
	ep, reason := b.tunnelFor(peer, payload.TunnelRARID)
	if ep == nil {
		return signalling.ErrorResult(reason)
	}
	_, gen, err := ep.Release(payload.SubFlowID)
	if err != nil {
		b.m.tunnelDenied.Inc()
		return signalling.ErrorResult(err.Error())
	}
	b.m.tunnelReleases.Inc()
	b.journalTunnelRelease(ep, payload.SubFlowID, gen)
	return signalling.OKResult(payload.SubFlowID)
}

// handleTunnelBatch applies many sub-flow ops in one RPC. Batches are
// idempotent: the first copy applies the ops, journals one record
// (applied ops + outcome) and caches the outcome; a retransmission with
// the same batch id — including one racing the original mid-flight —
// gets the recorded outcome instead of a second application.
func (b *BB) handleTunnelBatch(peer signalling.Peer, payload *signalling.TunnelBatchPayload) *signalling.Message {
	t0 := time.Now()
	if err := payload.Validate(); err != nil {
		b.recordBatchEvent(payload, len(payload.Ops), obs.VerdictDenied, err.Error(), t0)
		return signalling.ErrorResult(err.Error())
	}
	ep, reason := b.tunnelFor(peer, payload.TunnelRARID)
	if ep == nil {
		b.recordBatchEvent(payload, len(payload.Ops), obs.VerdictDenied, reason, t0)
		return signalling.ErrorResult(reason)
	}
	st, dup := b.tunnels.begin(payload.TunnelRARID, payload.BatchID, ep.Epoch)
	if dup {
		<-st.done
		b.m.tunnelBatchReplays.Inc()
		b.log.Info("tunnel: replaying recorded batch outcome",
			obs.AttrRAR, payload.TunnelRARID, obs.AttrPeer, string(peer.DN), "batch", payload.BatchID)
		if outcome := b.tunnels.outcomeOf(st); outcome != nil {
			resp := *outcome // shallow copy: Serve stamps the per-call ID
			return &resp
		}
		return signalling.ErrorResult(fmt.Sprintf("%s: batch %s settled without outcome", b.cfg.Domain, payload.BatchID))
	}
	results := make([]signalling.TunnelOpResult, len(payload.Ops))
	applied := make([]tunnelOpRec, 0, len(payload.Ops))
	granted := true
	for i, op := range payload.Ops {
		results[i].SubFlowID = op.SubFlowID
		switch op.Action {
		case signalling.OpAlloc:
			gen, err := ep.Allocate(op.SubFlowID, units.Bandwidth(op.Bandwidth))
			if err != nil {
				results[i].Reason = err.Error()
				granted = false
				b.m.tunnelDenied.Inc()
				continue
			}
			results[i].Granted = true
			b.m.tunnelAllocs.Inc()
			applied = append(applied, tunnelOpRec{Action: "alloc", SubFlowID: op.SubFlowID, Bandwidth: op.Bandwidth, Gen: gen})
		case signalling.OpRelease:
			_, gen, err := ep.Release(op.SubFlowID)
			if err != nil {
				results[i].Reason = err.Error()
				granted = false
				b.m.tunnelDenied.Inc()
				continue
			}
			results[i].Granted = true
			b.m.tunnelReleases.Inc()
			applied = append(applied, tunnelOpRec{Action: "release", SubFlowID: op.SubFlowID, Gen: gen})
		}
	}
	// Dense success path: a fully-granted batch answers with the single
	// granted bit — the sender knows its own op list, so per-op results
	// only enumerate when some op was denied. On large batches the
	// results array would otherwise dominate the response frame.
	resp := &signalling.Message{Type: signalling.MsgResult, Result: &signalling.ResultPayload{Granted: granted}}
	if !granted {
		denied := 0
		for _, r := range results {
			if !r.Granted {
				denied++
			}
		}
		resp.Result.BatchResults = results
		resp.Result.Reason = fmt.Sprintf("%s: %d/%d ops denied", b.cfg.Domain, denied, len(results))
	}
	// Journal the outcome before releasing duplicate waiters, so a
	// retransmission never observes an unjournaled application — and,
	// in a replica group, withhold it until a majority holds the record.
	b.journalTunnelBatch(ep, payload.BatchID, applied, resp)
	b.replWaitCommit()
	b.tunnels.settle(st, resp)
	b.m.tunnelBatches.Inc()
	b.m.tunnelBatchSeconds.ObserveSince(t0)
	verdict := obs.VerdictGranted
	if !granted {
		verdict = obs.VerdictDenied
	}
	b.recordBatchEvent(payload, len(payload.Ops), verdict, resp.Result.Reason, t0)
	b.maybeCheckpoint()
	return resp
}

// AllocateTunnelFlow is the source-side API: allocate a sub-flow
// locally and at the destination over the direct channel. Intermediate
// domains are not contacted.
func (b *BB) AllocateTunnelFlow(tunnelRARID, subFlowID string, bw units.Bandwidth, user identity.DN) error {
	ep, ok := b.tunnels.reg.Get(tunnelRARID)
	if !ok {
		return fmt.Errorf("bb %s: no tunnel %s", b.cfg.Domain, tunnelRARID)
	}
	if err := b.localAlloc(ep, subFlowID, bw); err != nil {
		b.m.tunnelDenied.Inc()
		return err
	}
	resp, _, err := b.callPeer(ep.PeerBB, &signalling.Message{
		Type: signalling.MsgTunnelAlloc,
		TunnelAlloc: &signalling.TunnelAllocPayload{
			TunnelRARID: tunnelRARID,
			SubFlowID:   subFlowID,
			User:        user,
			Bandwidth:   int64(bw),
		},
	})
	if err != nil {
		// Roll back the local half; the destination may or may not
		// have allocated, so best-effort release there too.
		b.localRelease(ep, subFlowID)
		go func() {
			if client, cerr := b.clientFor(ep.PeerBB); cerr == nil {
				_, _ = client.CallTimeout(&signalling.Message{
					Type:          signalling.MsgTunnelRelease,
					TunnelRelease: &signalling.TunnelReleasePayload{TunnelRARID: tunnelRARID, SubFlowID: subFlowID},
				}, b.cfg.CallTimeout)
			}
		}()
		return fmt.Errorf("bb %s: tunnel alloc at destination: %w", b.cfg.Domain, err)
	}
	if resp.Result == nil || !resp.Result.Granted {
		b.localRelease(ep, subFlowID)
		reason := "no result"
		if resp.Result != nil {
			reason = resp.Result.Reason
		}
		return fmt.Errorf("bb %s: destination refused sub-flow: %s", b.cfg.Domain, reason)
	}
	b.m.tunnelAllocs.Inc()
	return nil
}

// ReleaseTunnelFlow frees a sub-flow at both ends.
func (b *BB) ReleaseTunnelFlow(tunnelRARID, subFlowID string) error {
	ep, ok := b.tunnels.reg.Get(tunnelRARID)
	if !ok {
		return fmt.Errorf("bb %s: no tunnel %s", b.cfg.Domain, tunnelRARID)
	}
	_, gen, err := ep.Release(subFlowID)
	if err != nil {
		return err
	}
	b.journalTunnelRelease(ep, subFlowID, gen)
	b.m.tunnelReleases.Inc()
	resp, _, err := b.callPeer(ep.PeerBB, &signalling.Message{
		Type:          signalling.MsgTunnelRelease,
		TunnelRelease: &signalling.TunnelReleasePayload{TunnelRARID: tunnelRARID, SubFlowID: subFlowID},
	})
	if err != nil {
		return err
	}
	if resp.Result == nil || !resp.Result.Granted {
		return fmt.Errorf("bb %s: destination refused release", b.cfg.Domain)
	}
	return nil
}

// localAlloc / localRelease mutate the local endpoint half of a
// two-ended sub-flow operation and journal the mutation; rollbacks go
// through them too, so a recovered broker always agrees with the live
// one.
func (b *BB) localAlloc(ep *tunnel.Endpoint, subID string, bw units.Bandwidth) error {
	gen, err := ep.Allocate(subID, bw)
	if err != nil {
		return err
	}
	b.journalTunnelAlloc(ep, subID, bw, gen)
	return nil
}

func (b *BB) localRelease(ep *tunnel.Endpoint, subID string) {
	if _, gen, err := ep.Release(subID); err == nil {
		b.journalTunnelRelease(ep, subID, gen)
	}
}

// TunnelBatch is the batched source-side API: apply many alloc/release
// ops locally, ship the locally-successful subset to the destination in
// one MsgTunnelBatch, and reconcile — an op succeeds only when both
// ends applied it; local halves of remotely-denied ops are rolled back
// (a denied alloc is released, a denied release is re-admitted with its
// original bandwidth). A transport failure rolls back every local op;
// the destination's replay cache makes the retransmitted batch id safe.
// The returned results are in op order.
func (b *BB) TunnelBatch(tunnelRARID string, ops []signalling.TunnelOp, user identity.DN) ([]signalling.TunnelOpResult, error) {
	t0 := time.Now()
	ep, ok := b.tunnels.reg.Get(tunnelRARID)
	if !ok {
		return nil, fmt.Errorf("bb %s: no tunnel %s", b.cfg.Domain, tunnelRARID)
	}
	payload := &signalling.TunnelBatchPayload{
		TunnelRARID: tunnelRARID,
		BatchID:     signalling.NewBatchID(),
		User:        user,
		Ops:         ops,
	}
	if err := payload.Validate(); err != nil {
		return nil, err
	}
	// Source-side batches enter the network here, so this is where the
	// flight-recorder dice roll happens; the decision and trace id ride
	// the payload to the far endpoint.
	if b.sampler.Sample() {
		payload.Sampled = true
		payload.TraceID = obs.NewTraceID()
	}
	results := make([]signalling.TunnelOpResult, len(ops))
	// Local halves first; only locally-admitted ops travel to the peer.
	remote := make([]signalling.TunnelOp, 0, len(ops))
	remoteIdx := make([]int, 0, len(ops))
	released := make(map[string]units.Bandwidth, len(ops)) // undo data for remote-denied releases
	for i, op := range ops {
		results[i].SubFlowID = op.SubFlowID
		switch op.Action {
		case signalling.OpAlloc:
			if err := b.localAlloc(ep, op.SubFlowID, units.Bandwidth(op.Bandwidth)); err != nil {
				results[i].Reason = err.Error()
				b.m.tunnelDenied.Inc()
				continue
			}
		case signalling.OpRelease:
			bw, gen, err := ep.Release(op.SubFlowID)
			if err != nil {
				results[i].Reason = err.Error()
				b.m.tunnelDenied.Inc()
				continue
			}
			b.journalTunnelRelease(ep, op.SubFlowID, gen)
			released[op.SubFlowID] = bw
		}
		remote = append(remote, op)
		remoteIdx = append(remoteIdx, i)
	}
	if len(remote) == 0 {
		// Every op failed locally: nothing travelled, the batch settles
		// here as a denial.
		b.recordBatchEvent(payload, len(ops), obs.VerdictDenied, firstReason(results), t0)
		return results, nil
	}
	payload.Ops = remote
	resp, _, err := b.callPeer(ep.PeerBB, &signalling.Message{Type: signalling.MsgTunnelBatch, TunnelBatch: payload})
	if err != nil || resp.Result == nil {
		// Unknown destination state: undo every local half. The batch id
		// in the destination's replay cache keeps any successful
		// application there answerable; a fresh batch must use a fresh id.
		for _, i := range remoteIdx {
			b.undoLocalOp(ep, ops[i], released)
		}
		if err == nil {
			err = fmt.Errorf("destination sent no result")
		}
		b.recordBatchEvent(payload, len(ops), obs.VerdictError, err.Error(), t0)
		return nil, fmt.Errorf("bb %s: tunnel batch at destination: %w", b.cfg.Domain, err)
	}
	for k, i := range remoteIdx {
		var rr *signalling.TunnelOpResult
		if k < len(resp.Result.BatchResults) {
			rr = &resp.Result.BatchResults[k]
		}
		if resp.Result.Granted || (rr != nil && rr.Granted) {
			results[i].Granted = true
			if ops[i].Action == signalling.OpAlloc {
				b.m.tunnelAllocs.Inc()
			} else {
				b.m.tunnelReleases.Inc()
			}
			continue
		}
		// Destination refused (or the whole batch was refused before any
		// op ran, leaving no per-op results): roll the local half back.
		results[i].Reason = resp.Result.Reason
		if rr != nil && rr.Reason != "" {
			results[i].Reason = rr.Reason
		}
		b.m.tunnelDenied.Inc()
		b.undoLocalOp(ep, ops[i], released)
	}
	b.m.tunnelBatches.Inc()
	if b.cfg.Recorder != nil {
		verdict := obs.VerdictGranted
		for _, r := range results {
			if !r.Granted {
				verdict = obs.VerdictDenied
				break
			}
		}
		b.recordBatchEvent(payload, len(ops), verdict, firstReason(results), t0)
	}
	return results, nil
}

// firstReason surfaces the first per-op denial reason of a batch.
func firstReason(results []signalling.TunnelOpResult) string {
	for _, r := range results {
		if !r.Granted && r.Reason != "" {
			return r.Reason
		}
	}
	return ""
}

// undoLocalOp reverses the local half of a batch op whose remote half
// failed.
func (b *BB) undoLocalOp(ep *tunnel.Endpoint, op signalling.TunnelOp, released map[string]units.Bandwidth) {
	switch op.Action {
	case signalling.OpAlloc:
		b.localRelease(ep, op.SubFlowID)
	case signalling.OpRelease:
		if bw, ok := released[op.SubFlowID]; ok {
			_ = b.localAlloc(ep, op.SubFlowID, bw)
		}
	}
}

// Tunnel exposes a tunnel endpoint for inspection.
func (b *BB) Tunnel(rarID string) (*tunnel.Endpoint, bool) { return b.tunnels.reg.Get(rarID) }
