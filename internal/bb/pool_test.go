package bb

import (
	"errors"
	"testing"
	"time"

	"e2eqos/internal/identity"
	"e2eqos/internal/signalling"
)

// TestLateDroppedDoesNotBlockOnHungDial is the regression test for the
// metrics-scrape stall: get holds the per-peer slot mutex across the
// dial (deliberately — it singleflights connection establishment), and
// lateDropped used to take that same mutex per slot, so a scrape would
// queue behind a hung dial to one dead peer until its deadline. The
// gauge must read the slot lock-free.
func TestLateDroppedDoesNotBlockOnHungDial(t *testing.T) {
	dialStarted := make(chan struct{})
	release := make(chan struct{})
	p := newClientPool(func(dn identity.DN) (*signalling.Client, error) {
		close(dialStarted)
		<-release // a peer that accepts the connection and goes silent
		return nil, errors.New("dial aborted")
	}, nil)

	getDone := make(chan struct{})
	go func() {
		defer close(getDone)
		_, _ = p.get("/CN=dead-peer")
	}()
	<-dialStarted

	// The dial is parked inside the slot's critical section now; a
	// scrape must still complete immediately.
	scraped := make(chan int64, 1)
	go func() { scraped <- p.lateDropped() }()
	select {
	case v := <-scraped:
		if v != 0 {
			t.Errorf("lateDropped = %d, want 0", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("lateDropped blocked behind a hung dial")
	}

	select {
	case <-getDone:
		t.Fatal("get returned before the dial was released")
	default:
	}
	close(release)
	<-getDone
}

// TestPoolCloseAllClearsCachedClients pins the lock-free shadow's
// lifecycle: after closeAll the scrape path must not read retired
// clients.
func TestPoolCloseAllClearsCachedClients(t *testing.T) {
	p := newClientPool(func(dn identity.DN) (*signalling.Client, error) {
		return nil, errors.New("no transport in this test")
	}, nil)
	if _, err := p.get("/CN=peer"); err == nil {
		t.Fatal("get succeeded without a transport")
	}
	p.closeAll()
	if got := p.lateDropped(); got != 0 {
		t.Errorf("lateDropped after closeAll = %d, want 0", got)
	}
	if _, err := p.get("/CN=peer"); !errors.Is(err, errPoolClosed) {
		t.Errorf("get after closeAll = %v, want errPoolClosed", err)
	}
}
