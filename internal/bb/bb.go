// Package bb implements the bandwidth broker: the per-domain control
// plane entity that "provides admission control and configures the
// edge routers of a single administrative network domain". It ties
// together the core signalling protocol, the policy server, the
// advance-reservation table, the SLA contracts with peered domains,
// the tunnel registry, and the DiffServ data plane configuration.
package bb

import (
	"fmt"
	"log/slog"
	"sync"
	"time"

	"e2eqos/internal/core"
	"e2eqos/internal/cpusched"
	"e2eqos/internal/dataplane"
	"e2eqos/internal/disksched"
	"e2eqos/internal/identity"
	"e2eqos/internal/journal"
	"e2eqos/internal/obs"
	"e2eqos/internal/pki"
	"e2eqos/internal/policysrv"
	"e2eqos/internal/resv"
	"e2eqos/internal/saga"
	"e2eqos/internal/signalling"
	"e2eqos/internal/sla"
	"e2eqos/internal/topology"
	"e2eqos/internal/transport"
	"e2eqos/internal/units"
)

// defaultBucketBytes is the burst allowance configured with every
// installed profile and aggregate when Config.BucketBytes is unset.
const defaultBucketBytes = 30_000

// Config assembles a broker.
type Config struct {
	// Domain is the administrative domain this broker controls.
	Domain string
	// Key / Cert are the broker's identity.
	Key  *identity.KeyPair
	Cert *pki.Certificate
	// Trust is the broker's trust store (SLA peers pinned, home CA
	// rooted, introducer-depth policy set).
	Trust *pki.TrustStore
	// Policy is the domain's policy decision point.
	Policy *policysrv.Server
	// Capacity is the premium aggregate this domain admits.
	Capacity units.Bandwidth
	// Topo is the inter-domain topology used for next-hop selection.
	Topo *topology.Topology
	// InboundSLAs maps an upstream neighbour domain to the SLA
	// regulating premium traffic entering from it.
	InboundSLAs map[string]*sla.SLA
	// PeerCerts maps a peered broker DN to its certificate (exchanged
	// when the SLA was set up); needed to delegate capabilities to it.
	PeerCerts map[identity.DN]*pki.Certificate
	// PeerAddrs maps a broker DN to its transport address.
	PeerAddrs map[identity.DN]string
	// Dialer opens signalling channels.
	Dialer transport.Dialer
	// CPU / Disk are the co-managed local resource managers (optional).
	CPU  *cpusched.Manager
	Disk *disksched.Manager
	// Plane is the broker's hook into the domain's DiffServ devices —
	// the per-flow edge marker at the first hop (source domains) and
	// the per-aggregate ingress policer — behind the dataplane
	// interface. Nil when the broker runs control-plane-only (daemons,
	// signalling benchmarks).
	Plane dataplane.DataPlane
	// BucketBytes is the burst allowance configured with every
	// installed profile and aggregate (default 30 kB).
	BucketBytes int64
	// Clock is injectable for tests; defaults to time.Now.
	Clock func() time.Time

	// CallTimeout bounds each downstream signalling call (reserve
	// forwarding, cancel propagation, tunnel allocation). Zero waits
	// forever — the pre-robustness behaviour.
	CallTimeout time.Duration
	// MaxRetries is how many times a transport-failed downstream call
	// is retried (protocol denials are never retried). Zero disables.
	MaxRetries int
	// RetryBackoff is the initial retry delay, doubling per attempt
	// (default 10ms when retries are enabled).
	RetryBackoff time.Duration
	// BreakerThreshold opens a per-peer circuit breaker after that
	// many consecutive transport failures, so calls to a dead
	// neighbour fail fast instead of each waiting out a deadline.
	// Zero disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit refuses calls before
	// letting a probe through (default 5s).
	BreakerCooldown time.Duration
	// MaxPaths enables multipath routing at this broker's ingress: up
	// to MaxPaths edge-disjoint domain paths are tried in cost order
	// when the preferred one is breaker-open, denied mid-chain, or
	// fails in transport. Values <= 1 keep the single-path behaviour.
	MaxPaths int
	// SplitParts caps how many disjoint paths one reservation may be
	// split across when no single path grants it whole (per-path child
	// RARs settling atomically through the saga layer). Values < 2
	// disable splitting. Requires MaxPaths > 1 to matter.
	SplitParts int

	// Logger receives the broker's structured log records; the domain
	// is attached to every record. Nil discards everything.
	Logger *slog.Logger
	// Metrics registers the broker's counters, gauges and histograms.
	// The registry must be dedicated to this broker (metric names are
	// registered exactly once). Nil disables metrics at no cost.
	Metrics *obs.Registry

	// Recorder receives wide flight-recorder events (sampled plus every
	// denial/rollback/downstream failure). Nil disables the recorder at
	// no cost. The recorder is owned by the caller — bbd and the
	// experiment world close it after the broker — so it survives a
	// Crash()/recover cycle the way the on-disk journal does.
	Recorder *obs.Recorder
	// SampleRate is the probability that a request entering the network
	// at this broker (a user-submitted RAR or a source-side tunnel
	// batch) is flight-recorded. The decision propagates in the
	// signalling payload so mid-chain hops record the same requests
	// instead of rolling their own dice. Zero records only forced
	// events; 1 records everything.
	SampleRate float64

	// StateDir, when set, makes the broker durable: reservation-table
	// mutations and settled RAR outcomes are written to an append-only
	// journal in this directory, and New recovers whatever a previous
	// incarnation persisted there before serving. Empty keeps the
	// broker memory-only (the pre-durability behaviour).
	StateDir string
	// Fsync selects the journal's durability policy (default
	// journal.FsyncBatch). Only meaningful with StateDir set.
	Fsync journal.Policy

	// Wire selects the encoding for outbound signalling calls
	// (default WireBinary). Servers always answer in the caller's
	// encoding, so this only needs to match what the peer can parse;
	// WireJSON is the debug/interop mode.
	Wire signalling.WireMode

	// ReplicaID / ReplicaAddrs turn the broker into one member of a
	// replicated group (DESIGN.md §6.8): ReplicaAddrs maps every
	// replica id in the group — including this broker's own ReplicaID —
	// to its transport address. With fewer than two entries the broker
	// runs unreplicated (the pre-replication behaviour). Replication
	// requires StateDir: the stream is the journal.
	ReplicaID    int
	ReplicaAddrs map[int]string
	// StartAsFollower makes the broker boot as a follower awaiting a
	// leader's stream (or an election win). Unset, a replicated broker
	// boots as the group's leader at term 1 — the deployment convention
	// is that exactly one replica (id 0) boots as leader.
	StartAsFollower bool
	// ElectionTimeout, when positive, arms automatic failover: a
	// follower that hears nothing from a leader for this long (scaled
	// up by its replica id, so the group doesn't split its votes)
	// stands for election. Zero leaves promotion to an operator or the
	// experiment harness calling Promote.
	ElectionTimeout time.Duration
}

// rarState remembers what a reserve created locally, for cancellation
// and tunnel management.
type rarState struct {
	handle   string
	next     identity.DN // downstream broker the RAR was forwarded to
	tunnel   bool
	sourceBB identity.DN // authenticated source-domain broker (or user)
	spec     *core.Spec
	// done is closed once the reserve that created this entry has
	// settled; duplicates and cancels arriving mid-flight wait on it.
	done chan struct{}
	// outcome is the response originally returned for this RAR,
	// replayed verbatim when a retransmitted reserve arrives (the
	// upstream hop retries after losing the response; re-admitting
	// would double-book, denying a granted chain would strand it).
	outcome *signalling.Message
	// epoch uniquely identifies this registration of the RAR id in the
	// journal (ids may reappear after a cancel; epochs never repeat).
	// Immutable after registration.
	epoch int64
	// downKey is the route key this hop forwarded downstream under — it
	// differs from the entry's own key when the ingress re-routed onto
	// an alternate path (attempt-salted keys). Cancels propagate it.
	downKey string
	// children are the per-path child RARs of a split reservation at
	// its ingress (empty otherwise); cancels fan out to all of them.
	children []childRoute
}

// childRoute is one downstream leg of a split reservation.
type childRoute struct {
	Next identity.DN `json:"next"`
	Key  string      `json:"key"`
	BW   int64       `json:"bw,omitempty"`
}

// BB is a bandwidth broker.
type BB struct {
	cfg   Config
	proto *core.Broker
	table *resv.Table
	log   *slog.Logger
	m     bbMetrics

	// pool holds the outbound signalling clients, one multiplexed
	// connection per peer, with its own per-slot locking — never
	// acquired under b.mu.
	pool *clientPool

	mu       sync.Mutex
	routes   map[string]*rarState
	breakers map[identity.DN]*breaker
	// rarEpoch mints a unique epoch per route registration (under mu);
	// journal records carry it so replay can tell re-registrations of a
	// reused RAR id apart.
	rarEpoch int64

	// journal is the broker's write-ahead log (nil when Config.StateDir
	// is empty; every method on a nil journal no-ops). ckptMu coalesces
	// concurrent checkpoint triggers.
	journal *journal.Journal
	ckptMu  sync.Mutex

	// repl is the replication engine (nil when the broker runs
	// unreplicated — every caller checks).
	repl *replicator

	// sagas is the two-phase compensation layer: split reservations and
	// downstream rollback cancels register compensations here, and the
	// coordinator retries them persistently (journal-backed, so they
	// resume across crash recovery). Never nil.
	sagas *saga.Coordinator

	tunnels *tunnelRegistry

	// sampler makes the flight recorder's ingress sampling decisions
	// (nil when SampleRate is 0: only forced events are recorded).
	sampler *obs.Sampler
}

// New assembles a broker from the config.
func New(cfg Config) (*BB, error) {
	if cfg.Domain == "" {
		return nil, fmt.Errorf("bb: missing domain")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("bb: missing policy server")
	}
	if cfg.Topo == nil {
		return nil, fmt.Errorf("bb: missing topology")
	}
	proto, err := core.NewBroker(cfg.Key, cfg.Cert, cfg.Trust)
	if err != nil {
		return nil, err
	}
	table, err := resv.NewTable("net-"+cfg.Domain, cfg.Capacity)
	if err != nil {
		return nil, err
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	// The table shares the broker's clock so compaction horizons follow
	// simulated time in the experiments.
	table.SetClock(cfg.Clock)
	b := &BB{
		cfg:      cfg,
		proto:    proto,
		table:    table,
		log:      obs.BrokerLogger(cfg.Logger, cfg.Domain),
		m:        newBBMetrics(cfg.Metrics),
		routes:   make(map[string]*rarState),
		breakers: make(map[identity.DN]*breaker),
		tunnels:  newTunnelRegistry(),
		sampler:  obs.NewSampler(cfg.SampleRate),
	}
	b.pool = newClientPool(b.dialPeer, func() { b.m.clientEvictions.Inc() })
	// The saga coordinator exists before the journal opens: recovery
	// replays "saga." records into it, and compensation only starts
	// once Resume runs below.
	b.sagas = b.newSagaCoordinator()
	if b.replicated() && cfg.StateDir == "" {
		return nil, fmt.Errorf("bb %s: replication requires StateDir (the stream is the journal)", cfg.Domain)
	}
	if cfg.StateDir != "" {
		// Recover-on-boot: load the snapshot + record tail persisted by
		// a previous incarnation (possibly replacing the fresh table),
		// then start journaling new mutations.
		if err := b.openJournal(); err != nil {
			return nil, err
		}
		b.sagas.AttachJournal(b.journal)
	}
	if b.replicated() {
		b.repl = newReplicator(b)
	}
	if !cfg.StartAsFollower {
		// Presumed abort: sagas recovered without a commit record restart
		// their compensations. Followers only mirror saga state; the
		// leader (or a promoted follower) runs the compensations.
		if n := b.sagas.Resume(); n > 0 {
			b.log.Info("saga: resumed compensation after recovery", "sagas", n)
		}
	}
	b.registerGauges(cfg.Metrics)
	return b, nil
}

// replicated reports whether this broker is a member of a replica
// group (two or more configured replicas).
func (b *BB) replicated() bool {
	return len(b.cfg.ReplicaAddrs) > 1
}

// Logger exposes the broker's structured logger (never nil); the
// signalling server and daemon share it so records carry the domain.
func (b *BB) Logger() *slog.Logger { return b.log }

// MetricsRegistry exposes the broker's metric registry (nil when
// observability is disabled); the daemon's admin endpoint serves it.
func (b *BB) MetricsRegistry() *obs.Registry { return b.cfg.Metrics }

// DN returns the broker's identity.
func (b *BB) DN() identity.DN { return b.cfg.Key.DN }

// Domain returns the administrative domain.
func (b *BB) Domain() string { return b.cfg.Domain }

// Table exposes the reservation table (read-mostly: experiments and
// status tooling).
func (b *BB) Table() *resv.Table { return b.table }

// Cert returns the broker certificate.
func (b *BB) Cert() *pki.Certificate { return b.cfg.Cert }

// domainOfBB resolves a broker DN to its domain via the topology's
// reverse index.
func (b *BB) domainOfBB(dn identity.DN) (string, bool) {
	return b.cfg.Topo.DomainOfBB(dn)
}

// dialPeer opens and authenticates a fresh signalling client to the
// given peer broker; the pool owns caching and lifecycle. Reads only
// immutable config, so it runs without b.mu.
func (b *BB) dialPeer(dn identity.DN) (*signalling.Client, error) {
	addr, ok := b.cfg.PeerAddrs[dn]
	if !ok {
		return nil, fmt.Errorf("bb %s: no address for peer %s", b.cfg.Domain, dn)
	}
	if b.cfg.Dialer == nil {
		return nil, fmt.Errorf("bb %s: no dialer configured", b.cfg.Domain)
	}
	c, err := signalling.Dial(b.cfg.Dialer, addr)
	if err != nil {
		return nil, fmt.Errorf("bb %s: dialing %s: %w", b.cfg.Domain, dn, err)
	}
	c.Timeout = b.cfg.CallTimeout
	c.Wire = b.cfg.Wire
	if c.PeerDN() != dn {
		c.Close()
		return nil, fmt.Errorf("bb %s: dialed %s but authenticated peer is %s", b.cfg.Domain, dn, c.PeerDN())
	}
	return c, nil
}

// clientFor returns a pooled signalling client to the given peer
// broker, redialing transparently when the cached one has died.
func (b *BB) clientFor(dn identity.DN) (*signalling.Client, error) {
	return b.pool.get(dn)
}

// Close tears down all outbound clients and, when the broker is
// durable, flushes and closes its journal — the graceful shutdown.
func (b *BB) Close() {
	b.sagas.Close()
	b.repl.close()
	b.pool.closeAll()
	if err := b.journal.Close(); err != nil {
		b.log.Error("journal: close failed", "err", err)
	}
}

// Crash tears the broker down the way a dying process would: outbound
// clients drop and the journal is abandoned without a flush, so
// records still in the fsync batch buffer are lost. Crash-recovery
// tests and the experiment World use it; production code wants Close.
func (b *BB) Crash() {
	b.sagas.Close()
	b.repl.close()
	b.pool.closeAll()
	b.journal.Crash()
}

// bucket is the burst allowance pushed with every profile.
func (b *BB) bucket() int64 {
	if b.cfg.BucketBytes > 0 {
		return b.cfg.BucketBytes
	}
	return defaultBucketBytes
}

// syncDataPlane pushes the currently committed aggregate into the
// domain's ingress policer.
func (b *BB) syncDataPlane() {
	p := b.cfg.Plane
	if p == nil {
		return
	}
	rate := b.table.CommittedAt(b.cfg.Clock())
	if rate <= 0 {
		// A closed policer: nothing admitted, no premium passes.
		rate = 1 // 1 b/s effectively blocks premium traffic
	}
	p.SetAggregate(sla.TrafficProfile{Rate: rate, BucketBytes: b.bucket()})
}

// installEdgeFlow programs the source-domain edge marker for a granted
// flow.
func (b *BB) installEdgeFlow(spec *core.Spec) {
	p := b.cfg.Plane
	if p == nil {
		return
	}
	p.InstallProfile(spec.RARID, sla.TrafficProfile{
		Rate:        spec.Bandwidth,
		BucketBytes: b.bucket(),
	})
}

// removeEdgeFlow deprograms a cancelled flow.
func (b *BB) removeEdgeFlow(rarID string) {
	p := b.cfg.Plane
	if p == nil {
		return
	}
	p.RemoveProfile(rarID)
}

// signApproval builds this domain's signed approval record.
func (b *BB) signApproval(rarID, handle string, granted bool, reason string) (signalling.DomainApproval, error) {
	a := signalling.DomainApproval{
		Domain:  b.cfg.Domain,
		BBDN:    b.cfg.Key.DN,
		RARID:   rarID,
		Handle:  handle,
		Granted: granted,
		Reason:  reason,
	}
	if err := signalling.SignApproval(&a, b.cfg.Key); err != nil {
		return signalling.DomainApproval{}, err
	}
	return a, nil
}
