package bb

import (
	"fmt"
	"sync"
	"time"

	"e2eqos/internal/identity"
	"e2eqos/internal/obs"
	"e2eqos/internal/signalling"
)

// defaultRetryBackoff is the initial retry delay when retries are
// enabled but no backoff is configured; it doubles per attempt.
const defaultRetryBackoff = 10 * time.Millisecond

// breaker is a per-peer circuit breaker: after BreakerThreshold
// consecutive transport failures the circuit opens for BreakerCooldown
// and downstream calls fail fast instead of each waiting out a full
// deadline against a dead neighbour. After the cooldown one probe call
// is let through (half-open); its outcome re-trips or closes the
// circuit.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu        sync.Mutex
	failures  int
	openUntil time.Time
}

func (br *breaker) open(now time.Time) (time.Duration, bool) {
	if br.threshold <= 0 {
		return 0, false
	}
	br.mu.Lock()
	defer br.mu.Unlock()
	if now.Before(br.openUntil) {
		return br.openUntil.Sub(now), true
	}
	return 0, false
}

// fail records a transport failure and reports whether this failure
// transitioned the circuit from closed to open (so the caller can
// count and log the event exactly once per opening).
func (br *breaker) fail(now time.Time) bool {
	br.mu.Lock()
	defer br.mu.Unlock()
	br.failures++
	if br.threshold > 0 && br.failures >= br.threshold {
		wasClosed := !now.Before(br.openUntil)
		br.openUntil = now.Add(br.cooldown)
		return wasClosed
	}
	return false
}

func (br *breaker) ok() {
	br.mu.Lock()
	defer br.mu.Unlock()
	br.failures = 0
	br.openUntil = time.Time{}
}

// trip forces the circuit open as if the threshold had just been
// crossed. Fault-injection hook: breakers configured off (threshold 0)
// arm themselves at threshold 1 so the trip sticks.
func (br *breaker) trip(now time.Time) {
	br.mu.Lock()
	defer br.mu.Unlock()
	if br.threshold <= 0 {
		br.threshold = 1
	}
	br.failures = br.threshold
	br.openUntil = now.Add(br.cooldown)
}

// TripBreaker forces this broker's circuit to the named neighbour
// domain open for one cooldown period — the fault-injection hook the
// multipath re-route tests drive mid-signalling.
func (b *BB) TripBreaker(domain string) error {
	nd, ok := b.cfg.Topo.Domain(domain)
	if !ok {
		return fmt.Errorf("bb %s: unknown domain %s", b.cfg.Domain, domain)
	}
	b.breakerFor(nd.BBDN).trip(b.cfg.Clock())
	b.m.breakerOpens.Inc()
	b.log.Warn("circuit breaker tripped by operator", obs.AttrPeer, string(nd.BBDN))
	return nil
}

// breakerFor returns (creating if needed) the peer's circuit breaker.
func (b *BB) breakerFor(dn identity.DN) *breaker {
	b.mu.Lock()
	defer b.mu.Unlock()
	br, ok := b.breakers[dn]
	if !ok {
		cooldown := b.cfg.BreakerCooldown
		if cooldown <= 0 {
			cooldown = 5 * time.Second
		}
		br = &breaker{threshold: b.cfg.BreakerThreshold, cooldown: cooldown}
		b.breakers[dn] = br
	}
	return br
}

// dropClient retires the pooled client to dn if it is still the given
// instance, so the next clientFor redials instead of reusing a
// connection whose state is unknown after a transport failure. The
// retirement is a drain-close: calls other goroutines still have in
// flight on the connection settle on their own deadlines first.
func (b *BB) dropClient(dn identity.DN, c *signalling.Client) {
	b.pool.evict(dn, c)
}

// callPeer performs one downstream signalling call under the broker's
// robustness policy: per-call deadline (Config.CallTimeout), retry
// with exponential backoff on transport failures (never on
// protocol-level denials, which arrive as granted=false results), and
// the per-peer circuit breaker. On any transport failure the cached
// connection is dropped, so retries and later calls redial. The
// retries return reports how many extra attempts beyond the first
// were made (for span accounting); it is meaningful on error too.
func (b *BB) callPeer(dn identity.DN, msg *signalling.Message) (*signalling.Message, int, error) {
	br := b.breakerFor(dn)
	if wait, isOpen := br.open(b.cfg.Clock()); isOpen {
		return nil, 0, fmt.Errorf("bb %s: circuit to %s open for another %v", b.cfg.Domain, dn, wait.Round(time.Millisecond))
	}
	backoff := b.cfg.RetryBackoff
	if backoff <= 0 {
		backoff = defaultRetryBackoff
	}
	var lastErr error
	retries := 0
	for attempt := 0; attempt <= b.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			retries++
			b.m.retries.Inc()
			b.log.Debug("retrying downstream call",
				obs.AttrPeer, string(dn), "type", string(msg.Type),
				"attempt", attempt+1, "backoff", backoff)
			time.Sleep(backoff)
			backoff *= 2
		}
		client, err := b.clientFor(dn)
		if err != nil {
			lastErr = err
			b.noteFailure(br, dn)
			continue
		}
		resp, err := client.CallTimeout(msg, b.cfg.CallTimeout)
		if err != nil {
			lastErr = fmt.Errorf("bb %s: call to %s (attempt %d): %w", b.cfg.Domain, dn, attempt+1, err)
			b.dropClient(dn, client)
			b.noteFailure(br, dn)
			continue
		}
		br.ok()
		return resp, retries, nil
	}
	return nil, retries, lastErr
}

// noteFailure feeds a transport failure into the peer's breaker and
// accounts for the open transition, if this failure caused one.
func (b *BB) noteFailure(br *breaker, dn identity.DN) {
	if br.fail(b.cfg.Clock()) {
		b.m.breakerOpens.Inc()
		b.log.Warn("circuit breaker opened",
			obs.AttrPeer, string(dn), "cooldown", br.cooldown)
	}
}

// The downstream rollback cancel — formerly an ad-hoc goroutine here —
// now lives in the saga layer: see cancelDownstream in sagas.go. The
// compensation is journaled, so it survives a crash instead of dying
// with the process, and an exhausted retry budget is counted
// (bb_rollbacks_abandoned_total) and force-recorded instead of only
// logged.
