package bb

import (
	"fmt"

	"e2eqos/internal/identity"
	"e2eqos/internal/signalling"
	"e2eqos/internal/tunnel"
	"e2eqos/internal/wire"
)

// Binary codecs for the broker's journal records and rotated snapshot
// (DESIGN.md §6.6). Settled outcomes nest as complete signalling
// frames (bytes fields holding Message.AppendBinary output), so the
// replay cache round-trips through the same codec the wire uses.

// appendOutcome encodes an optional outcome message as a bytes field.
func appendOutcome(buf []byte, field uint32, m *signalling.Message) []byte {
	if m == nil {
		return buf
	}
	var start int
	buf, start = wire.BeginNested(buf, field)
	buf = m.AppendBinary(buf)
	return wire.EndNested(buf, start)
}

func decodeOutcome(d *wire.Dec) (*signalling.Message, error) {
	b := d.Bytes()
	if d.Err() != nil {
		return nil, d.Err()
	}
	return signalling.DecodeMessage(b)
}

// childRoute: 1=next 2=key 3=bw.
func (c childRoute) appendFields(buf []byte) []byte {
	buf = wire.AppendString(buf, 1, string(c.Next))
	buf = wire.AppendString(buf, 2, c.Key)
	return wire.AppendInt(buf, 3, c.BW)
}

func (c *childRoute) decodeFields(d *wire.Dec) error {
	for d.More() {
		f, wt := d.Tag()
		switch {
		case f == 1 && wt == wire.TBytes:
			c.Next = identity.DN(d.String())
		case f == 2 && wt == wire.TBytes:
			c.Key = d.String()
		case f == 3 && wt == wire.TVarint:
			c.BW = d.Varint()
		default:
			d.Skip(wt)
		}
	}
	return d.Err()
}

// rarRec: 1=rar_id 2=epoch 3=handle 4=next 5=tunnel 6=source_bb
// 7=outcome 8=down_key 9=children(repeated).
func (r rarRec) AppendBinary(buf []byte) []byte {
	buf = wire.AppendString(buf, 1, r.RARID)
	buf = wire.AppendInt(buf, 2, r.Epoch)
	buf = wire.AppendString(buf, 3, r.Handle)
	buf = wire.AppendString(buf, 4, string(r.Next))
	buf = wire.AppendBool(buf, 5, r.Tunnel)
	buf = wire.AppendString(buf, 6, string(r.SourceBB))
	buf = appendOutcome(buf, 7, r.Outcome)
	buf = wire.AppendString(buf, 8, r.DownKey)
	for i := range r.Children {
		var start int
		buf, start = wire.BeginNested(buf, 9)
		buf = r.Children[i].appendFields(buf)
		buf = wire.EndNested(buf, start)
	}
	return buf
}

func (r *rarRec) DecodeBinary(data []byte) error {
	d := wire.Dec{Buf: data}
	for d.More() {
		f, wt := d.Tag()
		switch {
		case f == 1 && wt == wire.TBytes:
			r.RARID = d.String()
		case f == 2 && wt == wire.TVarint:
			r.Epoch = d.Varint()
		case f == 3 && wt == wire.TBytes:
			r.Handle = d.String()
		case f == 4 && wt == wire.TBytes:
			r.Next = identity.DN(d.String())
		case f == 5 && wt == wire.TVarint:
			r.Tunnel = d.Bool()
		case f == 6 && wt == wire.TBytes:
			r.SourceBB = identity.DN(d.String())
		case f == 7 && wt == wire.TBytes:
			m, err := decodeOutcome(&d)
			if err != nil {
				return err
			}
			r.Outcome = m
		case f == 8 && wt == wire.TBytes:
			r.DownKey = d.String()
		case f == 9 && wt == wire.TBytes:
			sub := wire.Dec{Buf: d.Bytes()}
			var c childRoute
			if err := c.decodeFields(&sub); err != nil {
				return err
			}
			r.Children = append(r.Children, c)
		default:
			d.Skip(wt)
		}
	}
	return d.Err()
}

// rarCancelRec: 1=rar_id 2=epoch.
func (r rarCancelRec) AppendBinary(buf []byte) []byte {
	buf = wire.AppendString(buf, 1, r.RARID)
	return wire.AppendInt(buf, 2, r.Epoch)
}

func (r *rarCancelRec) DecodeBinary(data []byte) error {
	d := wire.Dec{Buf: data}
	for d.More() {
		f, wt := d.Tag()
		switch {
		case f == 1 && wt == wire.TBytes:
			r.RARID = d.String()
		case f == 2 && wt == wire.TVarint:
			r.Epoch = d.Varint()
		default:
			d.Skip(wt)
		}
	}
	return d.Err()
}

// tunnelOpRec: 1=action 2=sub_flow_id 3=bandwidth 4=gen.
func (r tunnelOpRec) appendFields(buf []byte) []byte {
	buf = wire.AppendString(buf, 1, r.Action)
	buf = wire.AppendString(buf, 2, r.SubFlowID)
	buf = wire.AppendInt(buf, 3, r.Bandwidth)
	return wire.AppendInt(buf, 4, r.Gen)
}

func (r *tunnelOpRec) decodeFields(d *wire.Dec) error {
	for d.More() {
		f, wt := d.Tag()
		switch {
		case f == 1 && wt == wire.TBytes:
			r.Action = d.String()
		case f == 2 && wt == wire.TBytes:
			r.SubFlowID = d.String()
		case f == 3 && wt == wire.TVarint:
			r.Bandwidth = d.Varint()
		case f == 4 && wt == wire.TVarint:
			r.Gen = d.Varint()
		default:
			d.Skip(wt)
		}
	}
	return d.Err()
}

// tunnelOpRecord: 1=rar_id 2=epoch 3=op.
func (r tunnelOpRecord) AppendBinary(buf []byte) []byte {
	buf = wire.AppendString(buf, 1, r.RARID)
	buf = wire.AppendInt(buf, 2, r.Epoch)
	var start int
	buf, start = wire.BeginNested(buf, 3)
	buf = r.tunnelOpRec.appendFields(buf)
	return wire.EndNested(buf, start)
}

func (r *tunnelOpRecord) DecodeBinary(data []byte) error {
	d := wire.Dec{Buf: data}
	for d.More() {
		f, wt := d.Tag()
		switch {
		case f == 1 && wt == wire.TBytes:
			r.RARID = d.String()
		case f == 2 && wt == wire.TVarint:
			r.Epoch = d.Varint()
		case f == 3 && wt == wire.TBytes:
			sub := wire.Dec{Buf: d.Bytes()}
			if err := r.tunnelOpRec.decodeFields(&sub); err != nil {
				return err
			}
		default:
			d.Skip(wt)
		}
	}
	return d.Err()
}

// tunnelBatchRec: 1=rar_id 2=epoch 3=batch_id 4=ops(repeated)
// 5=outcome.
func (r tunnelBatchRec) AppendBinary(buf []byte) []byte {
	buf = wire.AppendString(buf, 1, r.RARID)
	buf = wire.AppendInt(buf, 2, r.Epoch)
	buf = wire.AppendString(buf, 3, r.BatchID)
	for i := range r.Ops {
		var start int
		buf, start = wire.BeginNested(buf, 4)
		buf = r.Ops[i].appendFields(buf)
		buf = wire.EndNested(buf, start)
	}
	return appendOutcome(buf, 5, r.Outcome)
}

func (r *tunnelBatchRec) DecodeBinary(data []byte) error {
	d := wire.Dec{Buf: data}
	for d.More() {
		f, wt := d.Tag()
		switch {
		case f == 1 && wt == wire.TBytes:
			r.RARID = d.String()
		case f == 2 && wt == wire.TVarint:
			r.Epoch = d.Varint()
		case f == 3 && wt == wire.TBytes:
			r.BatchID = d.String()
		case f == 4 && wt == wire.TBytes:
			sub := wire.Dec{Buf: d.Bytes()}
			var op tunnelOpRec
			if err := op.decodeFields(&sub); err != nil {
				return err
			}
			r.Ops = append(r.Ops, op)
		case f == 5 && wt == wire.TBytes:
			m, err := decodeOutcome(&d)
			if err != nil {
				return err
			}
			r.Outcome = m
		default:
			d.Skip(wt)
		}
	}
	return d.Err()
}

// tunnelBatchSnap: 1=rar_id 2=epoch 3=batch_id 4=outcome.
func (r tunnelBatchSnap) AppendBinary(buf []byte) []byte {
	buf = wire.AppendString(buf, 1, r.RARID)
	buf = wire.AppendInt(buf, 2, r.Epoch)
	buf = wire.AppendString(buf, 3, r.BatchID)
	return appendOutcome(buf, 4, r.Outcome)
}

func (r *tunnelBatchSnap) DecodeBinary(data []byte) error {
	d := wire.Dec{Buf: data}
	for d.More() {
		f, wt := d.Tag()
		switch {
		case f == 1 && wt == wire.TBytes:
			r.RARID = d.String()
		case f == 2 && wt == wire.TVarint:
			r.Epoch = d.Varint()
		case f == 3 && wt == wire.TBytes:
			r.BatchID = d.String()
		case f == 4 && wt == wire.TBytes:
			m, err := decodeOutcome(&d)
			if err != nil {
				return err
			}
			r.Outcome = m
		default:
			d.Skip(wt)
		}
	}
	return d.Err()
}

// Broker snapshot binary layout: bbSnapMagic, bbSnapVersion, then
// 1=table(the resv snapshot bytes) 2=rars 3=tunnels 4=tunnel_batches
// 5=epoch 6=sagas(the coordinator's JSON snapshot). recoverState still
// accepts the JSON form written before the binary codec existed.
const (
	bbSnapMagic   = 0xB3
	bbSnapVersion = 1
)

func (st *brokerState) appendBinary(buf []byte) []byte {
	buf = append(buf, bbSnapMagic, bbSnapVersion)
	buf = wire.AppendBytes(buf, 1, st.Table)
	for i := range st.RARs {
		var start int
		buf, start = wire.BeginNested(buf, 2)
		buf = st.RARs[i].AppendBinary(buf)
		buf = wire.EndNested(buf, start)
	}
	for i := range st.Tunnels {
		var start int
		buf, start = wire.BeginNested(buf, 3)
		buf = st.Tunnels[i].AppendBinary(buf)
		buf = wire.EndNested(buf, start)
	}
	for i := range st.TunnelBatches {
		var start int
		buf, start = wire.BeginNested(buf, 4)
		buf = st.TunnelBatches[i].AppendBinary(buf)
		buf = wire.EndNested(buf, start)
	}
	buf = wire.AppendInt(buf, 5, st.Epoch)
	return wire.AppendBytes(buf, 6, st.Sagas)
}

func (st *brokerState) decodeBinary(data []byte) error {
	if len(data) < 2 || data[0] != bbSnapMagic {
		return fmt.Errorf("bb: not a binary snapshot")
	}
	if data[1] != bbSnapVersion {
		return fmt.Errorf("bb: unsupported snapshot version %d", data[1])
	}
	d := wire.Dec{Buf: data[2:]}
	for d.More() {
		f, wt := d.Tag()
		switch {
		case f == 1 && wt == wire.TBytes:
			st.Table = append([]byte(nil), d.Bytes()...)
		case f == 2 && wt == wire.TBytes:
			var r rarRec
			if err := r.DecodeBinary(d.Bytes()); err != nil {
				return err
			}
			st.RARs = append(st.RARs, r)
		case f == 3 && wt == wire.TBytes:
			var ts tunnel.EndpointSnapshot
			if err := ts.DecodeBinary(d.Bytes()); err != nil {
				return err
			}
			st.Tunnels = append(st.Tunnels, ts)
		case f == 4 && wt == wire.TBytes:
			var bs tunnelBatchSnap
			if err := bs.DecodeBinary(d.Bytes()); err != nil {
				return err
			}
			st.TunnelBatches = append(st.TunnelBatches, bs)
		case f == 5 && wt == wire.TVarint:
			st.Epoch = d.Varint()
		case f == 6 && wt == wire.TBytes:
			st.Sagas = append([]byte(nil), d.Bytes()...)
		default:
			d.Skip(wt)
		}
	}
	return d.Err()
}
