package bb

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"e2eqos/internal/identity"
	"e2eqos/internal/journal"
	"e2eqos/internal/resv"
	"e2eqos/internal/signalling"
)

// Journal record vocabulary for the broker's own durable state: the
// RAR route/replay cache. Reservation-table mutations use the "resv."
// vocabulary emitted by the table itself (resv.AttachJournal); both
// interleave in one journal per broker.
const (
	opRAR       = "bb.rar"
	opRARCancel = "bb.rar_cancel"
)

// rarRec journals one settled RAR entry: the route bookkeeping plus
// the outcome message replayed verbatim when an upstream hop
// retransmits. Epoch disambiguates re-registrations of a RAR id after
// a cancel (ids come from requesters and may legitimately reappear),
// so replay never lets a stale cancel remove a fresh entry.
type rarRec struct {
	RARID    string              `json:"rar_id"`
	Epoch    int64               `json:"epoch"`
	Handle   string              `json:"handle,omitempty"`
	Next     identity.DN         `json:"next,omitempty"`
	Tunnel   bool                `json:"tunnel,omitempty"`
	SourceBB identity.DN         `json:"source_bb,omitempty"`
	Outcome  *signalling.Message `json:"outcome,omitempty"`
}

// rarCancelRec journals the removal of a RAR entry.
type rarCancelRec struct {
	RARID string `json:"rar_id"`
	Epoch int64  `json:"epoch"`
}

// brokerState is the rotated snapshot: the reservation table plus
// every settled RAR entry, with the epoch counter so recovered brokers
// keep minting unique epochs.
type brokerState struct {
	Table json.RawMessage `json:"table"`
	RARs  []rarRec        `json:"rars,omitempty"`
	Epoch int64           `json:"epoch"`
}

// openJournal opens (or creates) the broker's journal directory,
// recovers persisted state into the table and route cache, wires the
// table's emission hook, and rotates so the WAL restarts empty on a
// snapshot reflecting everything just recovered. Called from New
// before the broker is shared; mutates b without locks.
func (b *BB) openJournal() error {
	t0 := time.Now()
	j, rec, err := journal.Open(b.cfg.StateDir, journal.Options{
		Fsync: b.cfg.Fsync,
		OnAppend: func(d time.Duration) {
			b.m.journalAppends.Inc()
			b.m.journalAppendSeconds.Observe(d.Seconds())
		},
		OnFsync: func() { b.m.journalFsyncBatches.Inc() },
		OnError: func(err error) {
			b.m.journalErrors.Inc()
			b.log.Error("journal: write failed", "err", err)
		},
	})
	if err != nil {
		return fmt.Errorf("bb %s: %w", b.cfg.Domain, err)
	}
	applied, err := b.recoverState(rec)
	if err != nil {
		j.Close()
		return fmt.Errorf("bb %s: journal recovery: %w", b.cfg.Domain, err)
	}
	b.journal = j
	resv.AttachJournal(b.table, j)
	if rec.Snapshot != nil || len(rec.Records) > 0 {
		if err := j.Rotate(b.snapshotState); err != nil {
			b.log.Error("journal: post-recovery checkpoint failed", "err", err)
		} else {
			b.m.checkpoints.Inc()
		}
	}
	took := time.Since(t0)
	b.m.recoverySeconds.Set(took.Seconds())
	b.m.recoveredRecords.Add(int64(applied))
	if rec.Torn {
		b.log.Warn("journal: discarded torn record tail from a previous crash")
	}
	if rec.Snapshot != nil || applied > 0 {
		b.log.Info("journal: recovered broker state",
			"records", applied, "reservations", b.table.Len(), "took", took)
	}
	return nil
}

// recoverState rebuilds the table and route cache from a recovered
// snapshot + record tail, returning how many records applied. Runs
// before the broker is shared, so it reads and writes b lock-free.
func (b *BB) recoverState(rec *journal.Recovered) (int, error) {
	if rec.Snapshot != nil {
		var st brokerState
		if err := json.Unmarshal(rec.Snapshot, &st); err != nil {
			return 0, fmt.Errorf("decoding snapshot: %w", err)
		}
		if len(st.Table) > 0 {
			tbl, err := resv.RestoreTable(st.Table)
			if err != nil {
				return 0, err
			}
			tbl.SetClock(b.cfg.Clock)
			b.table = tbl
		}
		b.rarEpoch = st.Epoch
		for _, r := range st.RARs {
			b.routes[r.RARID] = recoveredRARState(r)
		}
	}
	applied, err := resv.Replay(b.table, rec.Records)
	if err != nil {
		return applied, err
	}
	for _, r := range rec.Records {
		switch r.Op {
		case opRAR:
			var rr rarRec
			if err := r.Decode(&rr); err != nil {
				return applied, err
			}
			if rr.Epoch > b.rarEpoch {
				b.rarEpoch = rr.Epoch
			}
			// Concurrent emission can reorder records for a reused RAR
			// id; the higher epoch is always the later registration.
			if cur, ok := b.routes[rr.RARID]; ok && cur.epoch > rr.Epoch {
				break
			}
			b.routes[rr.RARID] = recoveredRARState(rr)
			applied++
		case opRARCancel:
			var cr rarCancelRec
			if err := r.Decode(&cr); err != nil {
				return applied, err
			}
			if cr.Epoch > b.rarEpoch {
				b.rarEpoch = cr.Epoch
			}
			// Remove only the registration this cancel actually ended: a
			// stale cancel must not evict a fresh re-registration.
			if cur, ok := b.routes[cr.RARID]; ok && cur.epoch == cr.Epoch {
				delete(b.routes, cr.RARID)
			}
			applied++
		}
	}
	return applied, nil
}

// recoveredRARState rebuilds an in-memory route entry from its record.
// The done channel comes pre-closed: the reserve settled in a previous
// life, so duplicates and cancels must not wait on it.
func recoveredRARState(r rarRec) *rarState {
	done := make(chan struct{})
	close(done)
	return &rarState{
		handle:   r.Handle,
		next:     r.Next,
		tunnel:   r.Tunnel,
		sourceBB: r.SourceBB,
		outcome:  r.Outcome,
		epoch:    r.Epoch,
		done:     done,
	}
}

// snapshotState serialises the broker's durable state for rotation.
// Entries still in flight (no outcome yet) are skipped: they journal
// themselves when they settle, after the rotation completes. Called by
// journal.Rotate with appends blocked; takes table.mu then b.mu, which
// is safe because no appender holds either while appending.
func (b *BB) snapshotState() ([]byte, error) {
	tbl, err := b.table.Snapshot()
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	st := brokerState{Table: tbl, Epoch: b.rarEpoch}
	for id, rs := range b.routes {
		if rs.outcome == nil {
			continue
		}
		st.RARs = append(st.RARs, rarRec{
			RARID:    id,
			Epoch:    rs.epoch,
			Handle:   rs.handle,
			Next:     rs.next,
			Tunnel:   rs.tunnel,
			SourceBB: rs.sourceBB,
			Outcome:  rs.outcome,
		})
	}
	b.mu.Unlock()
	sort.Slice(st.RARs, func(i, j int) bool { return st.RARs[i].RARID < st.RARs[j].RARID })
	return json.Marshal(st)
}

// journalRAR appends the settled route entry for rarID. Called after
// the outcome is recorded and with no locks held.
func (b *BB) journalRAR(rarID string, st *rarState) {
	if b.journal == nil {
		return
	}
	b.mu.Lock()
	rec := rarRec{
		RARID:    rarID,
		Epoch:    st.epoch,
		Handle:   st.handle,
		Next:     st.next,
		Tunnel:   st.tunnel,
		SourceBB: st.sourceBB,
		Outcome:  st.outcome,
	}
	b.mu.Unlock()
	_ = b.journal.Append(opRAR, rec)
}

// journalRARCancel appends the removal of a route entry.
func (b *BB) journalRARCancel(rarID string, epoch int64) {
	if b.journal == nil {
		return
	}
	_ = b.journal.Append(opRARCancel, rarCancelRec{RARID: rarID, Epoch: epoch})
}

// maybeCheckpoint rotates the journal when enough records accumulated.
// TryLock coalesces concurrent triggers into one rotation; callers
// hold no locks.
func (b *BB) maybeCheckpoint() {
	if b.journal == nil || !b.journal.NeedRotate() {
		return
	}
	if !b.ckptMu.TryLock() {
		return
	}
	defer b.ckptMu.Unlock()
	t0 := time.Now()
	if err := b.journal.Rotate(b.snapshotState); err != nil {
		b.m.journalErrors.Inc()
		b.log.Error("journal: checkpoint failed", "err", err)
		return
	}
	b.m.checkpoints.Inc()
	b.log.Info("journal: checkpointed broker state", "took", time.Since(t0))
}

// Journal exposes the broker's journal (nil when durability is
// disabled); tests and the daemon's shutdown path use it.
func (b *BB) Journal() *journal.Journal { return b.journal }
