package bb

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"e2eqos/internal/identity"
	"e2eqos/internal/journal"
	"e2eqos/internal/resv"
	"e2eqos/internal/saga"
	"e2eqos/internal/signalling"
	"e2eqos/internal/tunnel"
	"e2eqos/internal/units"
)

// Journal record vocabulary for the broker's own durable state: the
// RAR route/replay cache. Reservation-table mutations use the "resv."
// vocabulary emitted by the table itself (resv.AttachJournal); both
// interleave in one journal per broker.
const (
	opRAR       = "bb.rar"
	opRARCancel = "bb.rar_cancel"
	// Tunnel vocabulary: endpoint lifecycle plus the per-sub-flow hot
	// path. Sub-flow records carry the endpoint generation minted under
	// the mutated flow's shard lock; emit-after-unlock means the WAL
	// interleaving of records for *different* sub-flows can disagree
	// with generation order, so recovery re-sorts by generation before
	// applying (see applyTunnelOps).
	opTunnel        = "bb.tunnel"
	opTunnelRemove  = "bb.tunnel_remove"
	opTunnelAlloc   = "bb.tunnel_alloc"
	opTunnelRelease = "bb.tunnel_release"
	opTunnelBatch   = "bb.tunnel_batch"
)

// rarRec journals one settled RAR entry: the route bookkeeping plus
// the outcome message replayed verbatim when an upstream hop
// retransmits. Epoch disambiguates re-registrations of a RAR id after
// a cancel (ids come from requesters and may legitimately reappear),
// so replay never lets a stale cancel remove a fresh entry.
type rarRec struct {
	RARID    string              `json:"rar_id"`
	Epoch    int64               `json:"epoch"`
	Handle   string              `json:"handle,omitempty"`
	Next     identity.DN         `json:"next,omitempty"`
	Tunnel   bool                `json:"tunnel,omitempty"`
	SourceBB identity.DN         `json:"source_bb,omitempty"`
	DownKey  string              `json:"down_key,omitempty"`
	Children []childRoute        `json:"children,omitempty"`
	Outcome  *signalling.Message `json:"outcome,omitempty"`
}

// rarCancelRec journals the removal of a RAR entry.
type rarCancelRec struct {
	RARID string `json:"rar_id"`
	Epoch int64  `json:"epoch"`
}

// tunnelOpRec is one applied sub-flow mutation. Bandwidth is set for
// allocations only.
type tunnelOpRec struct {
	Action    string `json:"action"` // "alloc" or "release"
	SubFlowID string `json:"sub_flow_id"`
	Bandwidth int64  `json:"bandwidth,omitempty"`
	Gen       int64  `json:"gen"`
}

// tunnelOpRecord journals one sub-flow mutation outside a batch. Epoch
// pins the op to a specific registration of the tunnel RAR id, exactly
// like rarCancelRec does for routes.
type tunnelOpRecord struct {
	RARID string `json:"rar_id"`
	Epoch int64  `json:"epoch"`
	tunnelOpRec
}

// tunnelBatchRec journals an applied batch atomically: the ops that
// actually mutated the endpoint (with their generations) plus the
// outcome message replayed verbatim on retransmission. One record per
// batch is what makes batching cheap on the journal too.
type tunnelBatchRec struct {
	RARID   string              `json:"rar_id"`
	Epoch   int64               `json:"epoch"`
	BatchID string              `json:"batch_id"`
	Ops     []tunnelOpRec       `json:"ops,omitempty"`
	Outcome *signalling.Message `json:"outcome,omitempty"`
}

// tunnelBatchSnap is the snapshot form of a settled batch: the ops are
// already reflected in the endpoint snapshot, only the replay-cache
// entry survives.
type tunnelBatchSnap struct {
	RARID   string              `json:"rar_id"`
	Epoch   int64               `json:"epoch"`
	BatchID string              `json:"batch_id"`
	Outcome *signalling.Message `json:"outcome,omitempty"`
}

// brokerState is the rotated snapshot: the reservation table plus
// every settled RAR entry, the tunnel endpoints with their live
// sub-flows, the batch replay cache, and the epoch counter so
// recovered brokers keep minting unique epochs.
type brokerState struct {
	Table         json.RawMessage           `json:"table"`
	RARs          []rarRec                  `json:"rars,omitempty"`
	Tunnels       []tunnel.EndpointSnapshot `json:"tunnels,omitempty"`
	TunnelBatches []tunnelBatchSnap         `json:"tunnel_batches,omitempty"`
	// Sagas is the compensation coordinator's snapshot (saga.SnapshotJSON):
	// rollback debt still owed when the journal rotated.
	Sagas json.RawMessage `json:"sagas,omitempty"`
	Epoch int64           `json:"epoch"`
}

// openJournal opens (or creates) the broker's journal directory,
// recovers persisted state into the table and route cache, wires the
// table's emission hook, and rotates so the WAL restarts empty on a
// snapshot reflecting everything just recovered. Called from New
// before the broker is shared; mutates b without locks.
func (b *BB) openJournal() error {
	t0 := time.Now()
	opts := journal.Options{
		Fsync: b.cfg.Fsync,
		OnAppend: func(d time.Duration) {
			b.m.journalAppends.Inc()
			b.m.journalAppendSeconds.Observe(d.Seconds())
		},
		OnFsync: func() { b.m.journalFsyncBatches.Inc() },
		OnError: func(err error) {
			b.m.journalErrors.Inc()
			b.log.Error("journal: write failed", "err", err)
		},
	}
	if b.replicated() {
		// Replication streams raw frames off the journal's in-memory
		// tail; unreplicated brokers keep TailBytes zero and pay nothing.
		opts.TailBytes = replTailBytes
	}
	j, rec, err := journal.Open(b.cfg.StateDir, opts)
	if err != nil {
		return fmt.Errorf("bb %s: %w", b.cfg.Domain, err)
	}
	applied, err := b.recoverState(rec)
	if err != nil {
		j.Close()
		return fmt.Errorf("bb %s: journal recovery: %w", b.cfg.Domain, err)
	}
	b.journal = j
	resv.AttachJournal(b.table, j)
	if rec.Snapshot != nil || len(rec.Records) > 0 {
		if err := j.Rotate(b.snapshotState); err != nil {
			b.log.Error("journal: post-recovery checkpoint failed", "err", err)
		} else {
			b.m.checkpoints.Inc()
		}
	}
	took := time.Since(t0)
	b.m.recoverySeconds.Set(took.Seconds())
	b.m.recoveredRecords.Add(int64(applied))
	if rec.Torn {
		b.log.Warn("journal: discarded torn record tail from a previous crash")
	}
	if rec.Snapshot != nil || applied > 0 {
		b.log.Info("journal: recovered broker state",
			"records", applied, "reservations", b.table.Len(), "took", took)
	}
	return nil
}

// recoverState rebuilds the table and route cache from a recovered
// snapshot + record tail, returning how many records applied. Runs
// before the broker is shared, so it reads and writes b lock-free.
func (b *BB) recoverState(rec *journal.Recovered) (int, error) {
	if rec.Snapshot != nil {
		st, err := decodeBrokerState(rec.Snapshot)
		if err != nil {
			return 0, err
		}
		if len(st.Table) > 0 {
			tbl, err := resv.RestoreTable(st.Table)
			if err != nil {
				return 0, err
			}
			tbl.SetClock(b.cfg.Clock)
			b.table = tbl
		}
		b.rarEpoch = st.Epoch
		for _, r := range st.RARs {
			b.routes[r.RARID] = recoveredRARState(r)
		}
		for _, ts := range st.Tunnels {
			ep, err := tunnel.Restore(ts)
			if err != nil {
				return 0, fmt.Errorf("restoring tunnel %s: %w", ts.RARID, err)
			}
			b.tunnels.reg.Replace(ep)
		}
		for _, bs := range st.TunnelBatches {
			b.tunnels.restoreBatch(bs.RARID, bs.Epoch, bs.BatchID, bs.Outcome)
		}
		if len(st.Sagas) > 0 {
			if err := b.sagas.RestoreJSON(st.Sagas); err != nil {
				return 0, fmt.Errorf("restoring sagas: %w", err)
			}
		}
	}
	applied, err := resv.Replay(b.table, rec.Records)
	if err != nil {
		return applied, err
	}
	// Sub-flow mutations are collected during the scan and applied per
	// endpoint in generation order afterwards: emit-after-unlock lets
	// WAL order scramble records for distinct sub-flows, and establish /
	// remove records interleave with them. The epoch filter in
	// applyTunnelOps discards ops against registrations that did not
	// survive the scan.
	var tunnelOps []tunnelOpRecord
	for _, r := range rec.Records {
		ops, ok, err := b.applyBBRecord(r)
		if err != nil {
			return applied, err
		}
		tunnelOps = append(tunnelOps, ops...)
		if ok {
			applied++
		}
	}
	if err := b.applyTunnelOps(tunnelOps); err != nil {
		return applied, err
	}
	return applied, nil
}

// decodeBrokerState parses a rotated snapshot in either encoding
// (binary, or the JSON written before the binary codec existed). Boot
// recovery and the replication follower's snapshot install share it.
func decodeBrokerState(data []byte) (brokerState, error) {
	var st brokerState
	if len(data) > 0 && data[0] == bbSnapMagic {
		if err := st.decodeBinary(data); err != nil {
			return st, fmt.Errorf("decoding snapshot: %w", err)
		}
	} else if err := json.Unmarshal(data, &st); err != nil {
		return st, fmt.Errorf("decoding snapshot: %w", err)
	}
	return st, nil
}

// applyBBRecord applies one "bb." journal record to the live broker
// state, with fine-grained locking, so boot-time recovery and the
// replication follower's live stream apply share one semantics:
// higher-epoch-wins for route and tunnel (re)registrations, exact-epoch
// matching for removals. Sub-flow mutation records are NOT applied here
// — they need ordering the caller owns (recovery sorts the whole tail
// by generation; the follower holds a dense-generation reorder buffer)
// — so they are decoded and returned instead. The bool reports whether
// the record belonged to the "bb." vocabulary at all; foreign ops (the
// table's "resv." records) return (nil, false, nil).
func (b *BB) applyBBRecord(r journal.Record) ([]tunnelOpRecord, bool, error) {
	switch r.Op {
	case opRAR:
		var rr rarRec
		if err := r.Decode(&rr); err != nil {
			return nil, false, err
		}
		b.mu.Lock()
		if rr.Epoch > b.rarEpoch {
			b.rarEpoch = rr.Epoch
		}
		// Concurrent emission can reorder records for a reused RAR
		// id; the higher epoch is always the later registration.
		if cur, ok := b.routes[rr.RARID]; !ok || cur.epoch <= rr.Epoch {
			b.routes[rr.RARID] = recoveredRARState(rr)
		}
		b.mu.Unlock()
		return nil, true, nil
	case opRARCancel:
		var cr rarCancelRec
		if err := r.Decode(&cr); err != nil {
			return nil, false, err
		}
		b.mu.Lock()
		if cr.Epoch > b.rarEpoch {
			b.rarEpoch = cr.Epoch
		}
		// Remove only the registration this cancel actually ended: a
		// stale cancel must not evict a fresh re-registration.
		if cur, ok := b.routes[cr.RARID]; ok && cur.epoch == cr.Epoch {
			delete(b.routes, cr.RARID)
		}
		b.mu.Unlock()
		return nil, true, nil
	case opTunnel:
		var ts tunnel.EndpointSnapshot
		if err := r.Decode(&ts); err != nil {
			return nil, false, err
		}
		b.mu.Lock()
		if ts.Epoch > b.rarEpoch {
			b.rarEpoch = ts.Epoch
		}
		b.mu.Unlock()
		// The higher epoch is always the later registration of a
		// reused tunnel RAR id.
		if cur, ok := b.tunnels.reg.Get(ts.RARID); ok && cur.Epoch > ts.Epoch {
			return nil, true, nil
		}
		ep, err := tunnel.Restore(ts)
		if err != nil {
			return nil, false, fmt.Errorf("restoring tunnel %s: %w", ts.RARID, err)
		}
		b.tunnels.reg.Replace(ep)
		return nil, true, nil
	case opTunnelRemove:
		var cr rarCancelRec
		if err := r.Decode(&cr); err != nil {
			return nil, false, err
		}
		b.mu.Lock()
		if cr.Epoch > b.rarEpoch {
			b.rarEpoch = cr.Epoch
		}
		b.mu.Unlock()
		if cur, ok := b.tunnels.reg.Get(cr.RARID); ok && cur.Epoch == cr.Epoch {
			b.tunnels.reg.Remove(cr.RARID)
			b.tunnels.dropBatches(cr.RARID, cr.Epoch)
		}
		return nil, true, nil
	case opTunnelAlloc, opTunnelRelease:
		var tr tunnelOpRecord
		if err := r.Decode(&tr); err != nil {
			return nil, false, err
		}
		return []tunnelOpRecord{tr}, true, nil
	case opTunnelBatch:
		var br tunnelBatchRec
		if err := r.Decode(&br); err != nil {
			return nil, false, err
		}
		ops := make([]tunnelOpRecord, 0, len(br.Ops))
		for _, op := range br.Ops {
			ops = append(ops, tunnelOpRecord{RARID: br.RARID, Epoch: br.Epoch, tunnelOpRec: op})
		}
		b.tunnels.restoreBatch(br.RARID, br.Epoch, br.BatchID, br.Outcome)
		return ops, true, nil
	default:
		// Saga records (the rollback-debt ledger) replay into the
		// coordinator; Resume, after the scan, presumed-aborts whatever
		// is still live and restarts its compensations.
		if saga.IsSagaOp(r.Op) {
			_, err := b.sagas.ApplyRecord(r.Op, r.Decode)
			return nil, err == nil, err
		}
		return nil, false, nil
	}
}

// applyTunnelOps replays collected sub-flow mutations: grouped per
// tunnel, filtered to the registration (epoch) that survived the scan,
// sorted by generation, applied through the endpoint's idempotent
// replay entry points (which skip anything already reflected in the
// snapshot the endpoint was restored from).
func (b *BB) applyTunnelOps(ops []tunnelOpRecord) error {
	if len(ops) == 0 {
		return nil
	}
	byRAR := make(map[string][]tunnelOpRecord)
	for _, op := range ops {
		byRAR[op.RARID] = append(byRAR[op.RARID], op)
	}
	for rarID, group := range byRAR {
		ep, ok := b.tunnels.reg.Get(rarID)
		if !ok {
			continue // tunnel removed later in the log
		}
		live := group[:0]
		for _, op := range group {
			if op.Epoch == ep.Epoch {
				live = append(live, op)
			}
		}
		sort.Slice(live, func(i, j int) bool { return live[i].Gen < live[j].Gen })
		for _, op := range live {
			switch op.Action {
			case "alloc":
				if err := ep.ReplayAlloc(op.SubFlowID, units.Bandwidth(op.Bandwidth), op.Gen); err != nil {
					return err
				}
			case "release":
				ep.ReplayRelease(op.SubFlowID, op.Gen)
			}
		}
	}
	return nil
}

// recoveredRARState rebuilds an in-memory route entry from its record.
// The done channel comes pre-closed: the reserve settled in a previous
// life, so duplicates and cancels must not wait on it.
func recoveredRARState(r rarRec) *rarState {
	done := make(chan struct{})
	close(done)
	return &rarState{
		handle:   r.Handle,
		next:     r.Next,
		tunnel:   r.Tunnel,
		sourceBB: r.SourceBB,
		downKey:  r.DownKey,
		children: r.Children,
		outcome:  r.Outcome,
		epoch:    r.Epoch,
		done:     done,
	}
}

// snapshotState serialises the broker's durable state for rotation.
// Entries still in flight (no outcome yet) are skipped: they journal
// themselves when they settle, after the rotation completes. Called by
// journal.Rotate with appends blocked; takes table.mu then b.mu, which
// is safe because no appender holds either while appending.
func (b *BB) snapshotState() ([]byte, error) {
	tbl, err := b.table.Snapshot()
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	st := brokerState{Table: tbl, Epoch: b.rarEpoch}
	for id, rs := range b.routes {
		if rs.outcome == nil {
			continue
		}
		st.RARs = append(st.RARs, rarRec{
			RARID:    id,
			Epoch:    rs.epoch,
			Handle:   rs.handle,
			Next:     rs.next,
			Tunnel:   rs.tunnel,
			SourceBB: rs.sourceBB,
			DownKey:  rs.downKey,
			Children: rs.children,
			Outcome:  rs.outcome,
		})
	}
	b.mu.Unlock()
	st.Sagas = b.sagas.SnapshotJSON()
	sort.Slice(st.RARs, func(i, j int) bool { return st.RARs[i].RARID < st.RARs[j].RARID })
	// Registry.All is sorted by RAR id and Endpoint.Snapshot sorts
	// sub-flows, so identical state always marshals identically.
	for _, ep := range b.tunnels.reg.All() {
		st.Tunnels = append(st.Tunnels, ep.Snapshot())
	}
	st.TunnelBatches = b.tunnels.settledBatches()
	return st.appendBinary(nil), nil
}

// journalTunnel appends a tunnel-establishment record: the endpoint's
// full descriptor (no sub-flows yet). Called after registration with no
// locks held.
func (b *BB) journalTunnel(ep *tunnel.Endpoint) {
	if b.journal == nil {
		return
	}
	_ = b.journal.Append(opTunnel, ep.Snapshot())
}

// journalTunnelRemove appends the teardown of a tunnel registration.
func (b *BB) journalTunnelRemove(rarID string, epoch int64) {
	if b.journal == nil {
		return
	}
	_ = b.journal.Append(opTunnelRemove, rarCancelRec{RARID: rarID, Epoch: epoch})
}

// journalTunnelAlloc appends one admitted sub-flow (non-batch path).
func (b *BB) journalTunnelAlloc(ep *tunnel.Endpoint, subID string, bw units.Bandwidth, gen int64) {
	if b.journal == nil {
		return
	}
	_ = b.journal.Append(opTunnelAlloc, tunnelOpRecord{
		RARID: ep.RARID, Epoch: ep.Epoch,
		tunnelOpRec: tunnelOpRec{Action: "alloc", SubFlowID: subID, Bandwidth: int64(bw), Gen: gen},
	})
}

// journalTunnelRelease appends one released sub-flow (non-batch path).
func (b *BB) journalTunnelRelease(ep *tunnel.Endpoint, subID string, gen int64) {
	if b.journal == nil {
		return
	}
	_ = b.journal.Append(opTunnelRelease, tunnelOpRecord{
		RARID: ep.RARID, Epoch: ep.Epoch,
		tunnelOpRec: tunnelOpRec{Action: "release", SubFlowID: subID, Gen: gen},
	})
}

// journalTunnelBatch appends an applied batch: every op that mutated
// the endpoint plus the replayable outcome, in one record.
func (b *BB) journalTunnelBatch(ep *tunnel.Endpoint, batchID string, ops []tunnelOpRec, outcome *signalling.Message) {
	if b.journal == nil {
		return
	}
	_ = b.journal.Append(opTunnelBatch, tunnelBatchRec{
		RARID: ep.RARID, Epoch: ep.Epoch, BatchID: batchID, Ops: ops, Outcome: outcome,
	})
}

// journalRAR appends the settled route entry for rarID. Called after
// the outcome is recorded and with no locks held.
func (b *BB) journalRAR(rarID string, st *rarState) {
	if b.journal == nil {
		return
	}
	b.mu.Lock()
	rec := rarRec{
		RARID:    rarID,
		Epoch:    st.epoch,
		Handle:   st.handle,
		Next:     st.next,
		Tunnel:   st.tunnel,
		SourceBB: st.sourceBB,
		DownKey:  st.downKey,
		Children: st.children,
		Outcome:  st.outcome,
	}
	b.mu.Unlock()
	_ = b.journal.Append(opRAR, rec)
}

// journalRARCancel appends the removal of a route entry.
func (b *BB) journalRARCancel(rarID string, epoch int64) {
	if b.journal == nil {
		return
	}
	_ = b.journal.Append(opRARCancel, rarCancelRec{RARID: rarID, Epoch: epoch})
}

// maybeCheckpoint rotates the journal when enough records accumulated.
// TryLock coalesces concurrent triggers into one rotation; callers
// hold no locks.
func (b *BB) maybeCheckpoint() {
	if b.journal == nil || !b.journal.NeedRotate() {
		return
	}
	if !b.ckptMu.TryLock() {
		return
	}
	defer b.ckptMu.Unlock()
	t0 := time.Now()
	if err := b.journal.Rotate(b.snapshotState); err != nil {
		b.m.journalErrors.Inc()
		b.log.Error("journal: checkpoint failed", "err", err)
		return
	}
	b.m.checkpoints.Inc()
	b.log.Info("journal: checkpointed broker state", "took", time.Since(t0))
}

// Journal exposes the broker's journal (nil when durability is
// disabled); tests and the daemon's shutdown path use it.
func (b *BB) Journal() *journal.Journal { return b.journal }
