package bb_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"e2eqos/internal/experiment"
	"e2eqos/internal/obs"
	"e2eqos/internal/resv"
	"e2eqos/internal/topology"
	"e2eqos/internal/transport"
	"e2eqos/internal/units"
)

// grantedBWIn sums the bandwidth of granted reservations in one
// domain's table.
func grantedBWIn(w *experiment.World, domain string) units.Bandwidth {
	var total units.Bandwidth
	for _, r := range w.BBs[domain].Table().All() {
		if r.Status == resv.Granted {
			total += r.Bandwidth
		}
	}
	return total
}

// multiWorld builds a fan topology: Domain0 -> {Domain1..DomainN} ->
// Domain{N+1}, every branch edge-disjoint, branch i carrying cost i.
func multiWorld(t *testing.T, branches int, cfg experiment.WorldConfig) *experiment.World {
	t.Helper()
	topo, err := topology.Multi(branches, 1000*units.Mbps)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Topo = topo
	w, err := experiment.BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

// TestRerouteAroundDeadBranch kills each branch of a 3-branch fan in
// turn, mid-signalling: the transport failure surfaces only once the
// RAR is already in flight. The reservation must settle on a disjoint
// alternate path, with no double admission anywhere and nothing
// stranded on the dead branch.
func TestRerouteAroundDeadBranch(t *testing.T) {
	for _, dead := range []string{"Domain1", "Domain2", "Domain3"} {
		t.Run(dead, func(t *testing.T) {
			w := multiWorld(t, 3, experiment.WorldConfig{
				CallTimeout:  2 * time.Second,
				RetryBackoff: time.Millisecond,
				MaxPaths:     3,
				EnableObs:    true,
			})
			if err := w.StopDomain(dead); err != nil {
				t.Fatal(err)
			}
			u, err := w.NewUser("alice", "", nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(u.Close)

			spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 10 * units.Mbps})
			res, err := u.ReserveE2E(spec)
			if err != nil || !res.Granted {
				t.Fatalf("reserve with %s dead: res=%+v err=%v", dead, res, err)
			}
			if err := w.VerifyApprovals(res); err != nil {
				t.Fatalf("approval signatures: %v", err)
			}

			// The grant's approval chain must route around the dead branch.
			used := ""
			for _, a := range res.Approvals {
				if a.Domain == dead {
					t.Errorf("approval chain crosses the dead branch %s", dead)
				}
				if a.Domain != "Domain0" && a.Domain != w.DestDomain() {
					used = a.Domain
				}
			}
			if used == "" {
				t.Fatalf("no mid branch in approvals: %+v", res.Approvals)
			}

			// Zero double admission: exactly one granted reservation on the
			// chain actually used, zero everywhere else (the dead branch
			// never admitted — its broker object is alive, only its
			// frontend died, so its table is still inspectable).
			for _, d := range w.Domains {
				want := 0
				if d == "Domain0" || d == w.DestDomain() || d == used {
					want = 1
				}
				if got := grantedIn(w, d); got != want {
					t.Errorf("%s: %d granted, want %d", d, got, want)
				}
			}

			if dead == "Domain1" {
				// The primary (cheapest) branch died, so the grant is a
				// genuine re-route onto a disjoint path.
				if n := w.CounterTotal("bb_reroutes_total"); n < 1 {
					t.Errorf("bb_reroutes_total = %v, want >= 1", n)
				}
				// Cancel must follow the re-routed key downstream: the
				// ingress holds the RAR under the user's id but forwarded
				// the surviving attempt under a salted key.
				if err := u.Cancel("Domain0", spec.RARID); err != nil {
					t.Fatalf("cancel after re-route: %v", err)
				}
				waitForCleanTables(t, w)
			}
		})
	}
}

// TestBreakerSkipsPathOnReroute drives the breaker path of re-routing:
// with the primary branch dead and a threshold of one failure, the
// first reserve trips Domain0's breaker toward Domain1 mid-signalling
// and re-routes; the second reserve must skip the primary path without
// attempting it at all.
func TestBreakerSkipsPathOnReroute(t *testing.T) {
	w := multiWorld(t, 3, experiment.WorldConfig{
		CallTimeout:      2 * time.Second,
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Minute,
		MaxPaths:         3,
		EnableObs:        true,
	})
	if err := w.StopDomain("Domain1"); err != nil {
		t.Fatal(err)
	}
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)

	res1, err := u.ReserveE2E(u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 5 * units.Mbps}))
	if err != nil || !res1.Granted {
		t.Fatalf("first reserve: res=%+v err=%v", res1, err)
	}
	if n := w.CounterTotal("bb_reroutes_total"); n < 1 {
		t.Errorf("bb_reroutes_total after first reserve = %v, want >= 1", n)
	}

	res2, err := u.ReserveE2E(u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 5 * units.Mbps}))
	if err != nil || !res2.Granted {
		t.Fatalf("second reserve: res=%+v err=%v", res2, err)
	}
	if n := w.CounterTotal("bb_reroute_path_skips_total"); n < 1 {
		t.Errorf("bb_reroute_path_skips_total = %v, want >= 1 (breaker-open path not skipped)", n)
	}
	// Both grants went through Domain2 (the cheapest live branch);
	// nothing touched Domain1 or Domain3.
	for d, want := range map[string]int{"Domain0": 2, "Domain2": 2, "Domain4": 2, "Domain1": 0, "Domain3": 0} {
		if got := grantedIn(w, d); got != want {
			t.Errorf("%s: %d granted, want %d", d, got, want)
		}
	}
}

// TestTripBreakerForcesReroute is the operator-forced variant of the
// acceptance scenario: every broker is healthy, but Domain0's breaker
// toward the primary branch is tripped by hand. The reserve must skip
// the path pre-flight (no attempt, so no re-route counted either) and
// settle on the next disjoint path.
func TestTripBreakerForcesReroute(t *testing.T) {
	w := multiWorld(t, 3, experiment.WorldConfig{
		CallTimeout: 2 * time.Second,
		MaxPaths:    3,
		EnableObs:   true,
	})
	if err := w.BBs["Domain0"].TripBreaker("Domain1"); err != nil {
		t.Fatal(err)
	}
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)

	res, err := u.ReserveE2E(u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 5 * units.Mbps}))
	if err != nil || !res.Granted {
		t.Fatalf("reserve with tripped breaker: res=%+v err=%v", res, err)
	}
	for _, a := range res.Approvals {
		if a.Domain == "Domain1" {
			t.Error("approval chain crosses the breaker-open branch")
		}
	}
	if n := w.CounterTotal("bb_reroute_path_skips_total"); n < 1 {
		t.Errorf("bb_reroute_path_skips_total = %v, want >= 1", n)
	}
	if got := grantedIn(w, "Domain1"); got != 0 {
		t.Errorf("Domain1 admitted %d reservations through an open breaker", got)
	}
}

// TestSplitAcrossCapacityConstrainedPaths is the split acceptance
// scenario: neither branch of a two-branch fan can carry the full
// bandwidth, so the ingress splits the reservation into per-path
// children whose shares sum exactly to the signed bandwidth, settled
// atomically through the saga.
func TestSplitAcrossCapacityConstrainedPaths(t *testing.T) {
	w := multiWorld(t, 2, experiment.WorldConfig{
		Capacity: 10 * units.Mbps,
		Capacities: map[string]units.Bandwidth{
			"Domain1": 5 * units.Mbps,
			"Domain2": 5 * units.Mbps,
		},
		CallTimeout: 2 * time.Second,
		MaxPaths:    2,
		SplitParts:  2,
		EnableObs:   true,
	})
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)

	spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 10 * units.Mbps})
	res, err := u.ReserveE2E(spec)
	if err != nil || !res.Granted {
		t.Fatalf("split reserve: res=%+v err=%v", res, err)
	}
	if err := w.VerifyApprovals(res); err != nil {
		t.Fatalf("approval signatures on split grant: %v", err)
	}
	if n := w.CounterTotal("bb_splits_total"); n != 1 {
		t.Errorf("bb_splits_total = %v, want 1", n)
	}
	if n := w.CounterTotal("bb_split_failures_total"); n != 0 {
		t.Errorf("bb_split_failures_total = %v, want 0", n)
	}

	// The children's shares sum exactly to the signed bandwidth: one
	// 5 Mb/s admission per branch, two admissions totalling 10 Mb/s at
	// the destination, the full aggregate at the ingress.
	for domain, want := range map[string]units.Bandwidth{
		"Domain0": 10 * units.Mbps,
		"Domain1": 5 * units.Mbps,
		"Domain2": 5 * units.Mbps,
		"Domain3": 10 * units.Mbps,
	} {
		if got := grantedBWIn(w, domain); got != want {
			t.Errorf("%s: %s granted bandwidth, want %s", domain, got, want)
		}
	}
	for domain, want := range map[string]int{"Domain0": 1, "Domain1": 1, "Domain2": 1, "Domain3": 2} {
		if got := grantedIn(w, domain); got != want {
			t.Errorf("%s: %d granted reservations, want %d", domain, got, want)
		}
	}

	// Cancelling the parent must fan out to every child leg: the split
	// ingress recorded one downstream route per path, each under its
	// own salted key.
	if err := u.Cancel("Domain0", spec.RARID); err != nil {
		t.Fatalf("cancel split reservation: %v", err)
	}
	waitForCleanTables(t, w)
}

// TestSplitAbortsAtomicallyOnPartialDenial: one branch can carry its
// share, the other cannot. The saga must withdraw the granted sibling
// and release the ingress admission — a denial with zero stranded
// bandwidth anywhere, never a half-placed reservation.
func TestSplitAbortsAtomicallyOnPartialDenial(t *testing.T) {
	w := multiWorld(t, 2, experiment.WorldConfig{
		Capacity: 10 * units.Mbps,
		Capacities: map[string]units.Bandwidth{
			"Domain1": 5 * units.Mbps,
			"Domain2": 3 * units.Mbps, // cannot carry a 5 Mb/s share
		},
		CallTimeout:  2 * time.Second,
		RetryBackoff: time.Millisecond,
		MaxPaths:     2,
		SplitParts:   2,
		EnableObs:    true,
	})
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)

	res, err := u.ReserveE2E(u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 10 * units.Mbps}))
	if err != nil {
		t.Fatalf("reserve: %v", err)
	}
	if res.Granted {
		t.Fatalf("split granted despite an undersized branch: %+v", res)
	}
	// The denial carries the constrained branch's signed refusal.
	refused := false
	for _, a := range res.Approvals {
		if a.Domain == "Domain2" && !a.Granted {
			refused = true
		}
	}
	if !refused {
		t.Errorf("denial does not carry Domain2's signed refusal: %+v", res.Approvals)
	}
	if n := w.CounterTotal("bb_split_failures_total"); n != 1 {
		t.Errorf("bb_split_failures_total = %v, want 1", n)
	}
	if n := w.CounterTotal("bb_sagas_aborted_total"); n < 1 {
		t.Errorf("bb_sagas_aborted_total = %v, want >= 1", n)
	}
	// Atomic rollback: the granted sibling leg and the ingress
	// admission are withdrawn by the saga's compensations.
	waitForCleanTables(t, w)
	if n := w.CounterTotal("bb_saga_compensations_total"); n < 2 {
		t.Errorf("bb_saga_compensations_total = %v, want >= 2 (sibling cancel + local release)", n)
	}
}

// splitGateDialer wraps Domain0's outbound dialer for the crash test:
// connections to the gated address pass their first Send through (the
// full-bandwidth single-path attempt, which the capacity-constrained
// branch denies) and block the second Send — the split child — until
// the gate opens, then fail it. That parks the split mid-saga, after
// the sibling leg was granted and every compensation journaled, with
// the commit/abort record still unwritten.
type splitGateDialer struct {
	inner  transport.Dialer
	target string
	hit    chan struct{} // closed when a Send blocks on the gate
	gate   chan struct{} // close to release the blocked Send
	once   atomic.Bool
}

func (d *splitGateDialer) Dial(addr string) (transport.Conn, error) {
	conn, err := d.inner.Dial(addr)
	if err != nil || addr != d.target {
		return conn, err
	}
	return &splitGateConn{Conn: conn, d: d}, nil
}

type splitGateConn struct {
	transport.Conn
	d     *splitGateDialer
	sends atomic.Int64
}

func (c *splitGateConn) Send(msg []byte) error {
	if c.sends.Add(1) == 2 && c.d.once.CompareAndSwap(false, true) {
		close(c.d.hit)
		<-c.d.gate
		return fmt.Errorf("splitgate: link to %s severed", c.d.target)
	}
	return c.Conn.Send(msg)
}

// TestSplitCrashRecoveryResumesCompensations crashes the ingress
// broker in the middle of a split — after the first leg was granted
// downstream and every compensation step hit the journal, before any
// commit or abort record. The broker rebuilt from that journal must
// presume abort, resume the compensations, withdraw the granted leg
// (which propagates to the destination) and release its own admission;
// and a second crash/rebuild must reproduce the reconciled table
// byte-identically.
func TestSplitCrashRecoveryResumesCompensations(t *testing.T) {
	gate := &splitGateDialer{
		target: "bb.Domain2",
		hit:    make(chan struct{}),
		gate:   make(chan struct{}),
	}
	w := multiWorld(t, 2, experiment.WorldConfig{
		Capacity: 10 * units.Mbps,
		Capacities: map[string]units.Bandwidth{
			"Domain1": 5 * units.Mbps,
			"Domain2": 5 * units.Mbps,
		},
		CallTimeout:  time.Second,
		RetryBackoff: 5 * time.Millisecond,
		MaxPaths:     2,
		SplitParts:   2,
		EnableObs:    true,
		StateDir:     t.TempDir(),
		FsyncPolicy:  "always",
		WrapDialer: func(domain string, d transport.Dialer) transport.Dialer {
			if domain != "Domain0" {
				return d
			}
			gate.inner = d
			return gate
		},
	})
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)

	// The reserve parks inside the split when the second child's send
	// blocks on the gate; the user's call dies with the crash below.
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = u.ReserveE2E(u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 10 * units.Mbps}))
	}()

	select {
	case <-gate.hit:
	case <-time.After(10 * time.Second):
		t.Fatal("split never reached the gated second child")
	}
	// Saga state on disk at this instant: begin, the release step, both
	// cancel steps — no commit, no abort. The sibling leg via Domain1
	// is granted downstream (Domain1 and Domain3 both admitted).
	if got := grantedIn(w, "Domain1"); got != 1 {
		t.Fatalf("Domain1: %d granted before crash, want 1 (sibling leg)", got)
	}
	if err := w.CrashDomain("Domain0"); err != nil {
		t.Fatal(err)
	}
	close(gate.gate) // the parked handler unwinds into the dead broker
	<-done

	if err := w.RestartDomainFromJournal("Domain0"); err != nil {
		t.Fatal(err)
	}
	// Presumed abort: the rebuilt broker resumes the journaled
	// compensations — cancel the never-delivered child (settles as
	// unknown downstream), cancel the granted sibling (Domain1
	// propagates to Domain3), release the local admission.
	waitForCleanTables(t, w)
	if n := w.Metrics["Domain0"].Snapshot()["bb_saga_compensations_total"]; n < 3 {
		t.Errorf("bb_saga_compensations_total after recovery = %v, want >= 3", n)
	}
	if n := w.CounterTotal("bb_rollbacks_abandoned_total"); n != 0 {
		t.Errorf("bb_rollbacks_abandoned_total = %v, want 0 (every compensation must settle)", n)
	}

	// Reconciliation is durable: a second hard crash and rebuild must
	// reproduce the settled table byte-identically, with the saga debt
	// fully retired — nothing resurrects, nothing re-compensates.
	settled := tableSnapshot(t, w, "Domain0")
	if err := w.CrashDomain("Domain0"); err != nil {
		t.Fatal(err)
	}
	if err := w.RestartDomainFromJournal("Domain0"); err != nil {
		t.Fatal(err)
	}
	if got := tableSnapshot(t, w, "Domain0"); !bytes.Equal(settled, got) {
		t.Errorf("table differs after second rebuild\n want: %s\n  got: %s", settled, got)
	}
	if n := grantedCount(w); n != 0 {
		t.Errorf("%d reservations granted after second rebuild, want 0", n)
	}
}

// TestAbandonedRollbackCountedAndRecorded is the regression for the
// abandonment counter and its forced flight-recorder event: when every
// retry of a rollback cancel fails, the broker must say so loudly —
// bb_rollbacks_abandoned_total and a rollback-abandoned event — rather
// than silently strand downstream bandwidth.
func TestAbandonedRollbackCountedAndRecorded(t *testing.T) {
	events := t.TempDir()
	w, err := experiment.BuildWorld(experiment.WorldConfig{
		NumDomains:   3,
		CallTimeout:  200 * time.Millisecond,
		RetryBackoff: time.Millisecond,
		EnableObs:    true,
		EventsDir:    events,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)

	// Kill the next hop: the forward fails, the optimistic admission
	// rolls back, and the compensating cancel toward Domain1 has
	// nowhere to go — every attempt fails until the budget is spent.
	if err := w.StopDomain("Domain1"); err != nil {
		t.Fatal(err)
	}
	res, err := u.ReserveE2E(u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 5 * units.Mbps}))
	if err == nil && res.Granted {
		t.Fatalf("reserve granted through a dead hop: %+v", res)
	}

	deadline := time.Now().Add(10 * time.Second)
	for w.CounterTotal("bb_rollbacks_abandoned_total") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("bb_rollbacks_abandoned_total never incremented")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := w.CounterTotal("bb_events_forced_total"); n < 1 {
		t.Errorf("bb_events_forced_total = %v, want >= 1", n)
	}
	found := false
	if err := obs.ReadEvents(filepath.Join(events, "Domain0"), func(e *obs.Event) bool {
		if e.Kind == obs.EventRollbackAbandoned {
			found = true
			return false
		}
		return true
	}); err != nil {
		t.Fatalf("reading flight recorder: %v", err)
	}
	if !found {
		t.Error("no rollback-abandoned event in Domain0's flight recorder")
	}
}
