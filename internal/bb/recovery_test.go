package bb_test

import (
	"bytes"
	"testing"
	"time"

	"e2eqos/internal/experiment"
	"e2eqos/internal/resv"
	"e2eqos/internal/units"
)

// grantedIn counts granted reservations in one domain's table.
func grantedIn(w *experiment.World, domain string) int {
	n := 0
	for _, r := range w.BBs[domain].Table().All() {
		if r.Status == resv.Granted {
			n++
		}
	}
	return n
}

// tableSnapshot grabs a domain's reservation-table snapshot bytes.
func tableSnapshot(t *testing.T, w *experiment.World, domain string) []byte {
	t.Helper()
	data, err := w.BBs[domain].Table().Snapshot()
	if err != nil {
		t.Fatalf("%s: snapshot: %v", domain, err)
	}
	return data
}

// TestCrashRecoveryFromJournal is the kill-and-recover regression: a
// granted end-to-end reservation, then the source and mid-path brokers
// die hard (journal abandoned mid-batch, outbound clients dropped) and
// are rebuilt from scratch off their journals. The rebuilt brokers
// must hold byte-identical reservation tables, the granted handles
// must still validate, and a retransmission of the original RAR must
// be answered from the recovered replay cache — same handle, no
// second admission anywhere on the chain.
func TestCrashRecoveryFromJournal(t *testing.T) {
	w, err := experiment.BuildWorld(experiment.WorldConfig{
		NumDomains:  3,
		CallTimeout: 2 * time.Second,
		StateDir:    t.TempDir(),
		FsyncPolicy: "always",
		EnableObs:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)

	spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 10 * units.Mbps})
	res, err := u.ReserveE2E(spec)
	if err != nil || !res.Granted {
		t.Fatalf("baseline reserve: res=%+v err=%v", res, err)
	}
	if got, want := len(res.Approvals), len(w.Domains); got != want {
		t.Fatalf("grant carries %d approvals, want %d", got, want)
	}
	handles := make(map[string]string, len(res.Approvals))
	for _, a := range res.Approvals {
		handles[a.Domain] = a.Handle
	}

	crashed := []string{"Domain0", "Domain1"} // source and mid-path
	preCrash := make(map[string][]byte, len(crashed))
	for _, d := range crashed {
		preCrash[d] = tableSnapshot(t, w, d)
	}

	// Kill them the hard way and rebuild each from its journal alone:
	// the replacement broker is a fresh bb.New, so any state it holds
	// can only have come off disk.
	for _, d := range crashed {
		if err := w.CrashDomain(d); err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range crashed {
		if err := w.RestartDomainFromJournal(d); err != nil {
			t.Fatal(err)
		}
	}

	for _, d := range crashed {
		if got := tableSnapshot(t, w, d); !bytes.Equal(preCrash[d], got) {
			t.Errorf("%s: recovered table differs from pre-crash state\n want: %s\n  got: %s",
				d, preCrash[d], got)
		}
		if n := w.Metrics[d].Snapshot()["bb_recovered_records_total"]; n < 1 {
			t.Errorf("%s: bb_recovered_records_total = %v, want >= 1", d, n)
		}
	}
	// The grant must have survived: every domain's handle still
	// validates inside the reservation window.
	at := spec.Window.Start.Add(30 * time.Minute)
	for _, d := range w.Domains {
		if !w.BBs[d].Table().Valid(handles[d], at) {
			t.Errorf("%s: handle %s no longer valid after recovery", d, handles[d])
		}
	}

	// Retransmit the original RAR (same RARID). The user's pooled
	// connection died with the broker, so drop it and redial; the
	// recovered source broker must answer from its replayed RAR cache
	// with the original grant, not run admission again.
	u.Close()
	res2, err := u.ReserveE2E(spec)
	if err != nil || !res2.Granted {
		t.Fatalf("retransmitted reserve after recovery: res=%+v err=%v", res2, err)
	}
	if res2.Handle != res.Handle {
		t.Errorf("retransmission handle %q, want original %q", res2.Handle, res.Handle)
	}
	if err := w.VerifyApprovals(res2); err != nil {
		t.Fatalf("approval signature check on cached outcome: %v", err)
	}
	for _, d := range w.Domains {
		if n := grantedIn(w, d); n != 1 {
			t.Errorf("%s: %d granted reservations after retransmission, want exactly 1", d, n)
		}
	}
	// And the retransmission must not have journaled a second
	// admission either: the table state is still byte-identical.
	for _, d := range crashed {
		if got := tableSnapshot(t, w, d); !bytes.Equal(preCrash[d], got) {
			t.Errorf("%s: table changed after retransmitted RAR", d)
		}
	}
}

// TestGracefulRestartFlushesBatchJournal covers the other durability
// path: with the default group-commit fsync policy, a graceful stop
// (Close flushes the journal) followed by a rebuild from the journal
// must also reproduce the table exactly — the batch buffer may not
// lose records on clean shutdown.
func TestGracefulRestartFlushesBatchJournal(t *testing.T) {
	w, err := experiment.BuildWorld(experiment.WorldConfig{
		NumDomains:  2,
		CallTimeout: 2 * time.Second,
		StateDir:    t.TempDir(),
		FsyncPolicy: "batch",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)

	res, err := u.ReserveE2E(u.NewSpec(experiment.SpecOptions{
		DestDomain: w.DestDomain(), Bandwidth: 5 * units.Mbps,
	}))
	if err != nil || !res.Granted {
		t.Fatalf("baseline reserve: res=%+v err=%v", res, err)
	}
	want := tableSnapshot(t, w, "Domain0")

	// Stop cleanly; RestartDomainFromJournal closes the old broker
	// (flushing the batched journal) before rebuilding.
	if err := w.StopDomain("Domain0"); err != nil {
		t.Fatal(err)
	}
	if err := w.RestartDomainFromJournal("Domain0"); err != nil {
		t.Fatal(err)
	}
	if got := tableSnapshot(t, w, "Domain0"); !bytes.Equal(want, got) {
		t.Errorf("restarted table differs after graceful stop\n want: %s\n  got: %s", want, got)
	}
	if n := grantedIn(w, "Domain0"); n != 1 {
		t.Errorf("%d granted reservations after restart, want 1", n)
	}
}
