package bb_test

import (
	"encoding/json"
	"testing"
	"time"

	"e2eqos/internal/dsim"
	"e2eqos/internal/envelope"
	"e2eqos/internal/experiment"
	"e2eqos/internal/identity"
	"e2eqos/internal/netsim"
	"e2eqos/internal/policy"
	"e2eqos/internal/resv"
	"e2eqos/internal/signalling"
	"e2eqos/internal/sla"
	"e2eqos/internal/units"
)

// testWorld builds a small world and returns it with a trusted user.
func testWorld(t *testing.T, domains int) (*experiment.World, *experiment.User) {
	t.Helper()
	w, err := experiment.BuildWorld(experiment.WorldConfig{
		NumDomains:            domains,
		Capacity:              100 * units.Mbps,
		TrustUserCAEverywhere: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)
	return w, u
}

// rawPeer fabricates a signalling.Peer for direct Handle calls.
func rawPeer(u *experiment.User) signalling.Peer {
	return signalling.Peer{DN: u.DN(), CertDER: u.Agent.Cert.DER}
}

func TestHandleRejectsMalformedMessages(t *testing.T) {
	w, u := testWorld(t, 2)
	broker := w.BBs[w.SourceDomain()]
	peer := rawPeer(u)

	cases := []*signalling.Message{
		{Type: signalling.MsgReserve},           // missing payload
		{Type: signalling.MsgCancel},            // missing payload
		{Type: signalling.MsgTunnelAlloc},       // missing payload
		{Type: signalling.MsgTunnelRelease},     // missing payload
		{Type: signalling.MsgStatus},            // missing payload
		{Type: signalling.MsgType("wire-fuzz")}, // unknown type
		{Type: signalling.MsgResult},            // results are not requests
	}
	for _, msg := range cases {
		resp := broker.Handle(peer, msg)
		if resp == nil || resp.Result == nil || resp.Result.Granted {
			t.Errorf("message %q: expected error result, got %+v", msg.Type, resp)
		}
	}
}

func TestHandleReserveGarbageEnvelope(t *testing.T) {
	w, u := testWorld(t, 2)
	broker := w.BBs[w.SourceDomain()]
	resp := broker.Handle(rawPeer(u), &signalling.Message{
		Type:    signalling.MsgReserve,
		Reserve: &signalling.ReservePayload{Mode: signalling.ModeLocal, EnvelopeData: json.RawMessage(`"not an envelope"`)},
	})
	if resp.Result.Granted {
		t.Fatal("garbage envelope accepted")
	}
}

func TestHandleReserveForgedSigner(t *testing.T) {
	// A request signed by the user but presented over a channel
	// claiming a different peer must be refused.
	w, u := testWorld(t, 2)
	broker := w.BBs[w.SourceDomain()]
	spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: units.Mbps})
	rar, err := u.Agent.BuildRAR(spec, w.BBCerts[w.SourceDomain()])
	if err != nil {
		t.Fatal(err)
	}
	msg, err := signalling.NewReserveMessage(signalling.ModeLocal, rar)
	if err != nil {
		t.Fatal(err)
	}
	forged := signalling.Peer{DN: identity.NewDN("Grid", "X", "mallory"), CertDER: u.Agent.Cert.DER}
	resp := broker.Handle(forged, msg)
	if resp.Result.Granted {
		t.Fatal("envelope accepted from mismatched channel peer")
	}
}

func TestHandleReserveDuplicateRARID(t *testing.T) {
	w, u := testWorld(t, 2)
	spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: units.Mbps})
	res, err := u.ReserveE2E(spec)
	if err != nil || !res.Granted {
		t.Fatalf("setup: %v %+v", err, res)
	}
	// The same RAR id again is treated as a retransmission: the
	// original grant is replayed, and crucially no second reservation
	// is admitted (a duplicate id must never double-book capacity).
	res2, err := u.ReserveE2E(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Granted {
		t.Fatalf("retransmitted RAR denied: %s", res2.Reason)
	}
	if res2.Handle != res.Handle {
		t.Errorf("replay handle = %q, want original %q", res2.Handle, res.Handle)
	}
	for _, dom := range w.Domains {
		n := 0
		for _, r := range w.BBs[dom].Table().All() {
			if r.Status == resv.Granted {
				n++
			}
		}
		if n != 1 {
			t.Errorf("%s: %d granted reservations after replay, want 1", dom, n)
		}
	}
}

func TestHandleReserveReplayedEnvelopeAtWrongBroker(t *testing.T) {
	// A RAR addressed to the source broker replayed at the
	// destination broker must fail the path-naming check.
	w, u := testWorld(t, 3)
	spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: units.Mbps})
	rar, err := u.Agent.BuildRAR(spec, w.BBCerts[w.SourceDomain()])
	if err != nil {
		t.Fatal(err)
	}
	msg, err := signalling.NewReserveMessage(signalling.ModeLocal, rar)
	if err != nil {
		t.Fatal(err)
	}
	dest := w.BBs[w.DestDomain()]
	resp := dest.Handle(rawPeer(u), msg)
	if resp.Result.Granted {
		t.Fatal("misaddressed RAR accepted by wrong broker")
	}
}

func TestStatusLifecycle(t *testing.T) {
	w, u := testWorld(t, 2)
	broker := w.BBs[w.SourceDomain()]
	spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 2 * units.Mbps})
	res, err := u.ReserveE2E(spec)
	if err != nil || !res.Granted {
		t.Fatalf("setup: %v %+v", err, res)
	}
	resp := broker.Handle(rawPeer(u), &signalling.Message{
		Type:   signalling.MsgStatus,
		Status: &signalling.StatusPayload{RARID: spec.RARID},
	})
	if !resp.Result.Granted {
		t.Fatalf("status failed: %+v", resp.Result)
	}
	if resp.Result.PolicyInfo["status"] != "granted" {
		t.Errorf("status info = %v", resp.Result.PolicyInfo)
	}
	if resp.Result.PolicyInfo["bandwidth"] != "2Mb/s" {
		t.Errorf("bandwidth info = %v", resp.Result.PolicyInfo)
	}
	// Unknown RAR.
	resp = broker.Handle(rawPeer(u), &signalling.Message{
		Type:   signalling.MsgStatus,
		Status: &signalling.StatusPayload{RARID: "RAR-nope"},
	})
	if resp.Result.Granted {
		t.Fatal("status of unknown RAR granted")
	}
}

func TestDenialCarriesSignedRefusals(t *testing.T) {
	w, u := testWorld(t, 3)
	// Exhaust the destination.
	fill := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 100 * units.Mbps})
	if res, err := u.ReserveLocalAt(w.DestDomain(), fill); err != nil || !res.Granted {
		t.Fatalf("setup: %v %+v", err, res)
	}
	spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 10 * units.Mbps})
	spec.Window = fill.Window
	res, err := u.ReserveE2E(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Granted {
		t.Fatal("grant into exhausted destination")
	}
	// The denial response carries approvals from the denying domain
	// and the upstream domains that rolled back.
	if len(res.Approvals) == 0 {
		t.Fatal("denial carries no signed refusals")
	}
	foundDenier := false
	for _, a := range res.Approvals {
		if a.Domain == w.DestDomain() && !a.Granted {
			foundDenier = true
			if err := signalling.VerifyApproval(&a, w.BBCerts[a.Domain].PublicKey()); err != nil {
				t.Errorf("refusal signature: %v", err)
			}
		}
	}
	if !foundDenier {
		t.Errorf("no signed refusal from the denying domain: %+v", res.Approvals)
	}
}

func TestTunnelAllocViaUnknownTunnel(t *testing.T) {
	w, u := testWorld(t, 2)
	broker := w.BBs[w.SourceDomain()]
	resp := broker.Handle(rawPeer(u), &signalling.Message{
		Type:        signalling.MsgTunnelAlloc,
		TunnelAlloc: &signalling.TunnelAllocPayload{TunnelRARID: "RAR-ghost", SubFlowID: "s", Bandwidth: 1},
	})
	if resp.Result.Granted {
		t.Fatal("allocation on unknown tunnel granted")
	}
	resp = broker.Handle(rawPeer(u), &signalling.Message{
		Type:          signalling.MsgTunnelRelease,
		TunnelRelease: &signalling.TunnelReleasePayload{TunnelRARID: "RAR-ghost", SubFlowID: "s"},
	})
	if resp.Result.Granted {
		t.Fatal("release on unknown tunnel granted")
	}
}

func TestTunnelOwnerMayAllocateDirectly(t *testing.T) {
	// The tunnel owner (the user) may drive allocations at the source
	// broker herself.
	w, u := testWorld(t, 3)
	spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 50 * units.Mbps, Tunnel: true})
	res, err := u.ReserveE2E(spec)
	if err != nil || !res.Granted {
		t.Fatalf("setup: %v %+v", err, res)
	}
	broker := w.BBs[w.SourceDomain()]
	resp := broker.Handle(rawPeer(u), &signalling.Message{
		Type: signalling.MsgTunnelAlloc,
		TunnelAlloc: &signalling.TunnelAllocPayload{
			TunnelRARID: spec.RARID,
			SubFlowID:   "owner-flow",
			User:        u.DN(),
			Bandwidth:   int64(10 * units.Mbps),
		},
	})
	if !resp.Result.Granted {
		t.Fatalf("owner allocation refused: %+v", resp.Result)
	}
}

func TestCancelUnknownAndForeignRAR(t *testing.T) {
	w, u := testWorld(t, 2)
	broker := w.BBs[w.SourceDomain()]
	resp := broker.Handle(rawPeer(u), &signalling.Message{
		Type:   signalling.MsgCancel,
		Cancel: &signalling.CancelPayload{RARID: "RAR-ghost"},
	})
	if resp.Result.Granted {
		t.Fatal("cancel of unknown RAR granted")
	}
}

func TestReserveExpiredWindowRejected(t *testing.T) {
	w, u := testWorld(t, 2)
	spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: units.Mbps})
	spec.Window = units.Window{} // invalid
	if _, err := u.ReserveE2E(spec); err == nil {
		t.Fatal("invalid window not rejected client-side")
	}
	// Hand-build an envelope with a zero window to bypass client
	// validation — the spec must fail broker-side validation too.
	badSpec := *spec
	raw, err := json.Marshal(&badSpec)
	if err != nil {
		t.Fatal(err)
	}
	env, err := envelope.Seal(u.Agent.Key, envelope.Body{
		Request:   raw,
		NextHopDN: w.BBs[w.SourceDomain()].DN(),
	})
	if err != nil {
		t.Fatal(err)
	}
	msg, err := signalling.NewReserveMessage(signalling.ModeLocal, env)
	if err != nil {
		t.Fatal(err)
	}
	resp := w.BBs[w.SourceDomain()].Handle(rawPeer(u), msg)
	if resp.Result.Granted {
		t.Fatal("broker accepted spec with invalid window")
	}
}

func TestClockSkewedCertificateRejected(t *testing.T) {
	// Verification at a time outside the user certificate's validity
	// must fail: brokers pass their clock into core.Verify.
	w, err := experiment.BuildWorld(experiment.WorldConfig{
		NumDomains: 2,
		Capacity:   100 * units.Mbps,
		Clock:      func() time.Time { return time.Now().Add(3 * 365 * 24 * time.Hour) },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)
	spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: units.Mbps})
	res, err := u.ReserveE2E(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Granted {
		t.Fatal("reservation granted with expired user certificate")
	}
}

func TestTunnelFlowLifecycleDirectAPI(t *testing.T) {
	w, u := testWorld(t, 3)
	spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 30 * units.Mbps, Tunnel: true})
	res, err := u.ReserveE2E(spec)
	if err != nil || !res.Granted {
		t.Fatalf("setup: %v %+v", err, res)
	}
	src := w.BBs[w.SourceDomain()]
	if err := src.AllocateTunnelFlow(spec.RARID, "f1", 10*units.Mbps, u.DN()); err != nil {
		t.Fatal(err)
	}
	ep, ok := src.Tunnel(spec.RARID)
	if !ok || ep.Used() != 10*units.Mbps {
		t.Fatalf("endpoint used = %v ok=%v", ep.Used(), ok)
	}
	if err := src.AllocateTunnelFlow("RAR-ghost", "f2", units.Mbps, u.DN()); err == nil {
		t.Error("allocation on unknown tunnel succeeded")
	}
	if err := src.ReleaseTunnelFlow(spec.RARID, "f1"); err != nil {
		t.Fatal(err)
	}
	if ep.Used() != 0 {
		t.Errorf("used after release = %v", ep.Used())
	}
	if err := src.ReleaseTunnelFlow(spec.RARID, "f1"); err == nil {
		t.Error("double release succeeded")
	}
	if err := src.ReleaseTunnelFlow("RAR-ghost", "f1"); err == nil {
		t.Error("release on unknown tunnel succeeded")
	}
}

func TestDiskLinkedReservationPolicy(t *testing.T) {
	// Destination policy requires a disk co-reservation.
	w, err := experiment.BuildWorld(experiment.WorldConfig{
		NumDomains: 2,
		Capacity:   100 * units.Mbps,
		Policies: map[string]*policy.Policy{
			"Domain1": policy.MustParse("d1", "allow if has disk-reservation\ndeny"),
		},
		Disks: map[string]units.Bandwidth{"Domain1": 400 * units.Mbps},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)

	// Without the disk link: denied.
	spec := u.NewSpec(experiment.SpecOptions{DestDomain: "Domain1", Bandwidth: 10 * units.Mbps})
	res, err := u.ReserveE2E(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Granted {
		t.Fatal("granted without disk co-reservation")
	}
	// With it: granted.
	handle, err := w.Disk["Domain1"].Reserve(u.DN(), 50*units.Mbps, spec.Window)
	if err != nil {
		t.Fatal(err)
	}
	spec2 := u.NewSpec(experiment.SpecOptions{
		DestDomain: "Domain1",
		Bandwidth:  10 * units.Mbps,
		Window:     spec.Window,
		Linked:     map[string]string{"disk": handle},
	})
	res, err = u.ReserveE2E(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Granted {
		t.Fatalf("denied with valid disk link: %s", res.Reason)
	}
}

func TestDataPlaneSyncOnGrantAndCancel(t *testing.T) {
	w, u := testWorld(t, 2)
	// Attach a data plane to the source domain.
	sim := dsim.New()
	sink := netsim.NewSink(sim)
	policer := netsim.NewPolicer(sim, sla.TrafficProfile{Rate: 1, BucketBytes: 1}, sla.Drop, sink)
	marker := netsim.NewEdgeMarker(sim, policer)
	w.NetsimPlane(w.SourceDomain()).AttachEdge(marker)
	w.NetsimPlane(w.SourceDomain()).AttachPolicer(policer)

	spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 10 * units.Mbps})
	spec.Window.Start = time.Now().Add(-time.Minute) // active now
	res, err := u.ReserveE2E(spec)
	if err != nil || !res.Granted {
		t.Fatalf("setup: %v %+v", err, res)
	}
	// The edge marker must now mark the flow premium.
	marker.Receive(&netsim.Packet{Flow: netsim.FlowID(spec.RARID), Size: 100})
	st := sink.Stats(netsim.FlowID(spec.RARID))
	if st == nil || st.RxBytesByCls[netsim.Premium] == 0 {
		t.Fatal("granted flow not marked premium by the configured edge")
	}
	// After cancel the same packet rides best effort.
	if err := u.Cancel(w.SourceDomain(), spec.RARID); err != nil {
		t.Fatal(err)
	}
	marker.Receive(&netsim.Packet{Flow: netsim.FlowID(spec.RARID), Size: 100})
	st = sink.Stats(netsim.FlowID(spec.RARID))
	if st.RxBytesByCls[netsim.BestEffort] == 0 {
		t.Fatal("cancelled flow still marked premium")
	}
}
