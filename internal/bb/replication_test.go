package bb_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"e2eqos/internal/core"
	"e2eqos/internal/experiment"
	"e2eqos/internal/obs"
	"e2eqos/internal/signalling"
	"e2eqos/internal/units"
)

// waitReplicated blocks until every live follower of domain has
// applied (and re-journaled) everything the current leader holds.
// Quiesce only — callers stop mutating first.
func waitReplicated(t *testing.T, w *experiment.World, domain string, live []int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		leader := w.LeaderOf(domain)
		target := w.ReplicaBB(domain, leader).ReplicationStatus().JournalSeq
		caught := true
		for _, i := range live {
			if i == leader {
				continue
			}
			if w.ReplicaBB(domain, i).ReplicationStatus().AppliedSeq < target {
				caught = false
				break
			}
		}
		if caught {
			return
		}
		if time.Now().After(deadline) {
			for _, i := range live {
				t.Logf("replica %d: %+v", i, w.ReplicaBB(domain, i).ReplicationStatus())
			}
			t.Fatalf("%s: followers never caught up to leader seq %d", domain, target)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// replicaDigest serialises one replica's full durable state in the
// canonical snapshot encoding.
func replicaDigest(t *testing.T, w *experiment.World, domain string, i int) []byte {
	t.Helper()
	d, err := w.ReplicaBB(domain, i).StateDigest()
	if err != nil {
		t.Fatalf("%s replica %d: digest: %v", domain, i, err)
	}
	return d
}

// requireDigestsEqual diffs replica state byte-for-byte.
func requireDigestsEqual(t *testing.T, w *experiment.World, domain string, ids []int) {
	t.Helper()
	base := replicaDigest(t, w, domain, ids[0])
	for _, i := range ids[1:] {
		if got := replicaDigest(t, w, domain, i); !bytes.Equal(base, got) {
			t.Fatalf("%s: replica %d state diverged from replica %d\n r%d: %s\n r%d: %s",
				domain, i, ids[0], ids[0], base, i, got)
		}
	}
}

// TestReplicationFollowersConverge: a healthy 3-replica group under
// mixed load (grants, a cancel) converges — every follower's applied
// stream catches the leader's journal and all three replicas hold
// byte-identical state.
func TestReplicationFollowersConverge(t *testing.T) {
	w, err := experiment.BuildWorld(experiment.WorldConfig{
		NumDomains:  2,
		Replicas:    3,
		StateDir:    t.TempDir(),
		FsyncPolicy: "always",
		CallTimeout: 2 * time.Second,
		EnableObs:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)

	var cancelID string
	for i := 0; i < 5; i++ {
		spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 5 * units.Mbps})
		res, err := u.ReserveE2E(spec)
		if err != nil || !res.Granted {
			t.Fatalf("reserve %d: res=%+v err=%v", i, res, err)
		}
		cancelID = spec.RARID
	}
	if err := u.Cancel(w.SourceDomain(), cancelID); err != nil {
		t.Fatalf("cancel: %v", err)
	}

	all := []int{0, 1, 2}
	for _, d := range w.Domains {
		waitReplicated(t, w, d, all)
		requireDigestsEqual(t, w, d, all)
		for _, i := range all[1:] {
			st := w.ReplicaBB(d, i).ReplicationStatus()
			if !st.Replicated || st.Leader || st.LeaderID != 0 {
				t.Errorf("%s replica %d: unexpected status %+v", d, i, st)
			}
			if snap := w.ReplicaBB(d, i).MetricsRegistry().Snapshot(); snap["bb_repl_records_applied_total"] < 1 {
				t.Errorf("%s replica %d: no records applied: %v", d, i, snap["bb_repl_records_applied_total"])
			}
		}
	}
}

// TestReplicatedFailoverPreservesGrants is the randomized failover
// property: under a random amount of granted load, the source
// domain's leader dies the hard way (buffered batch-fsync records
// lost, connections dropped) and a follower is promoted. Every grant
// a caller ever saw must survive — retransmitting each original RAR
// is answered from the promoted follower's replay cache with the
// identical handle and no second admission — new admissions must
// succeed, and the survivors' state must converge byte-for-byte.
func TestReplicatedFailoverPreservesGrants(t *testing.T) {
	rng := rand.New(rand.NewSource(0xE2E05))
	for round := 0; round < 3; round++ {
		t.Run(fmt.Sprintf("round%d", round), func(t *testing.T) {
			eventsDir := t.TempDir()
			w, err := experiment.BuildWorld(experiment.WorldConfig{
				NumDomains:  2,
				Replicas:    3,
				StateDir:    t.TempDir(),
				FsyncPolicy: "batch", // buffered records die with the leader
				CallTimeout: 2 * time.Second,
				EnableObs:   true,
				EventsDir:   eventsDir,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(w.Close)
			u, err := w.NewUser("alice", "", nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(u.Close)
			src := w.SourceDomain()

			// Random load: the leader dies at a different journal
			// offset every round.
			type grant struct {
				spec   *core.Spec
				handle string
			}
			nLoad := 1 + rng.Intn(6)
			grants := make([]grant, 0, nLoad)
			for i := 0; i < nLoad; i++ {
				spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 2 * units.Mbps})
				res, err := u.ReserveE2E(spec)
				if err != nil || !res.Granted {
					t.Fatalf("load reserve %d: res=%+v err=%v", i, res, err)
				}
				grants = append(grants, grant{spec: spec, handle: res.Handle})
			}
			grantedBefore := grantedIn(w, src)

			killed, err := w.KillLeader(src)
			if err != nil {
				t.Fatal(err)
			}
			promoted, err := w.PromoteAny(src)
			if err != nil {
				t.Fatal(err)
			}
			if promoted == killed {
				t.Fatalf("promoted the dead leader %d", killed)
			}
			u.Close() // the user's pooled connection died with the leader

			// Every grant the user ever saw was commit-gated: the
			// promoted follower must hold it. Retransmissions hit its
			// replay cache — same handle, no second admission.
			for i, g := range grants {
				res, err := u.ReserveE2E(g.spec)
				if err != nil || !res.Granted {
					t.Fatalf("retransmit %d after failover: res=%+v err=%v", i, res, err)
				}
				if res.Handle != g.handle {
					t.Errorf("retransmit %d: handle %q, want original %q", i, res.Handle, g.handle)
				}
			}
			if got := grantedIn(w, src); got != grantedBefore {
				t.Errorf("granted reservations %d after retransmits, want %d (no double admission)", got, grantedBefore)
			}

			// The promoted leader serves new admissions.
			fresh := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 3 * units.Mbps})
			if res, err := u.ReserveE2E(fresh); err != nil || !res.Granted {
				t.Fatalf("fresh reserve after failover: res=%+v err=%v", res, err)
			}

			// Survivors converge to byte-identical state.
			var live []int
			for i := 0; i < 3; i++ {
				if i != killed {
					live = append(live, i)
				}
			}
			waitReplicated(t, w, src, live)
			requireDigestsEqual(t, w, src, live)

			st := w.ReplicaBB(src, promoted).ReplicationStatus()
			if !st.Leader || st.Term < 2 {
				t.Errorf("promoted replica status %+v, want leader at term >= 2", st)
			}
			if snap := w.ReplicaBB(src, promoted).MetricsRegistry().Snapshot(); snap["bb_repl_elections_total"] != 1 {
				t.Errorf("bb_repl_elections_total = %v, want 1", snap["bb_repl_elections_total"])
			}
			// The election is force-recorded in the flight recorder.
			var sawFailover bool
			dir := filepath.Join(eventsDir, src, fmt.Sprintf("r%d", promoted))
			if err := obs.ReadEvents(dir, func(ev *obs.Event) bool {
				if ev.Kind == obs.EventFailover {
					sawFailover = true
					return false
				}
				return true
			}); err != nil {
				t.Fatalf("reading promoted replica's events: %v", err)
			}
			if !sawFailover {
				t.Error("no failover event recorded by the promoted replica")
			}
		})
	}
}

// TestReplicatedFailoverPreservesTunnelBatches: the tunnel sub-flow
// state and the batch replay cache survive failover — a retransmitted
// batch is answered with its original per-op results and the endpoint
// allocation is unchanged; new batches apply on the promoted leader.
func TestReplicatedFailoverPreservesTunnelBatches(t *testing.T) {
	w, err := experiment.BuildWorld(experiment.WorldConfig{
		NumDomains:  2,
		Replicas:    3,
		Capacity:    1000 * units.Mbps,
		StateDir:    t.TempDir(),
		FsyncPolicy: "batch",
		CallTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)
	src := w.SourceDomain()

	spec := u.NewSpec(experiment.SpecOptions{
		DestDomain: w.DestDomain(), Bandwidth: 100 * units.Mbps, Tunnel: true,
	})
	if res, err := u.ReserveE2E(spec); err != nil || !res.Granted {
		t.Fatalf("tunnel establishment: res=%+v err=%v", res, err)
	}
	payload := &signalling.TunnelBatchPayload{
		TunnelRARID: spec.RARID, BatchID: signalling.NewBatchID(), User: u.DN(),
		Ops: []signalling.TunnelOp{
			{Action: signalling.OpAlloc, SubFlowID: "f1", Bandwidth: int64(40 * units.Mbps)},
			{Action: signalling.OpAlloc, SubFlowID: "f2", Bandwidth: int64(30 * units.Mbps)},
		},
	}
	res, err := u.TunnelBatch(src, payload)
	if err != nil || !res.Granted {
		t.Fatalf("batch: res=%+v err=%v", res, err)
	}

	killed, err := w.KillLeader(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.PromoteAny(src); err != nil {
		t.Fatal(err)
	}
	u.Close()

	// The promoted leader holds the endpoint exactly as allocated.
	ep, ok := w.BBs[src].Tunnel(spec.RARID)
	if !ok {
		t.Fatal("tunnel endpoint lost in failover")
	}
	if ep.Used() != 70*units.Mbps || ep.Len() != 2 {
		t.Fatalf("endpoint after failover: used=%v len=%d, want 70Mb/s over 2", ep.Used(), ep.Len())
	}
	// Retransmitting the settled batch replays its recorded outcome —
	// no re-execution, allocation unchanged.
	res2, err := u.TunnelBatch(src, payload)
	if err != nil || !res2.Granted {
		t.Fatalf("batch retransmit: res=%+v err=%v", res2, err)
	}
	if ep.Used() != 70*units.Mbps || ep.Len() != 2 {
		t.Fatalf("retransmit changed the endpoint: used=%v len=%d", ep.Used(), ep.Len())
	}
	// A genuinely new batch still applies.
	res3, err := u.TunnelBatch(src, &signalling.TunnelBatchPayload{
		TunnelRARID: spec.RARID, BatchID: signalling.NewBatchID(), User: u.DN(),
		Ops: []signalling.TunnelOp{{Action: signalling.OpRelease, SubFlowID: "f2"}},
	})
	if err != nil || !res3.Granted {
		t.Fatalf("new batch after failover: res=%+v err=%v", res3, err)
	}
	if ep.Used() != 40*units.Mbps || ep.Len() != 1 {
		t.Fatalf("release after failover: used=%v len=%d, want 40Mb/s over 1", ep.Used(), ep.Len())
	}

	var live []int
	for i := 0; i < 3; i++ {
		if i != killed {
			live = append(live, i)
		}
	}
	waitReplicated(t, w, src, live)
	requireDigestsEqual(t, w, src, live)
}
