// Package billing implements the transitive billing scheme §6.4
// sketches: "Whenever a domain actually bills the requesting entity
// for the use of the network service, SLAs are already used to set up
// a transitive billing relation in multi-domain networks. When network
// traffic enters domain C through domain B, it is billed using the
// agreement between B and C. B as a transient domain, however, would
// also bill traffic originating from a different domain using the
// related SLA. Finally, the source domain would bill the traffic
// against the originator."
//
// Each domain keeps a ledger of usage per reservation; settlement
// walks the signalling path backwards, producing one invoice per SLA
// edge plus the source domain's invoice to the user, each domain
// adding its own margin on top of what it owes downstream.
package billing

import (
	"fmt"
	"sort"
	"sync"

	"e2eqos/internal/identity"
	"e2eqos/internal/units"
)

// Rate is a price in micro-currency-units per gigabyte carried.
type Rate int64

// Money is an amount in micro-currency-units.
type Money int64

// String renders money in currency units with 6 decimals.
func (m Money) String() string {
	return fmt.Sprintf("%d.%06d", m/1_000_000, m%1_000_000)
}

// Charge computes the cost of carrying bytes at this rate.
func (r Rate) Charge(bytes int64) Money {
	// per-GB pricing with integer arithmetic: bytes * rate / 1e9.
	return Money(bytes / 1_000 * int64(r) / 1_000_000)
}

// Usage is the measured consumption of one reservation.
type Usage struct {
	RARID string
	Bytes int64
	// Bandwidth is the reserved rate (informational on invoices).
	Bandwidth units.Bandwidth
}

// Invoice is one billing relation settled for one reservation.
type Invoice struct {
	RARID string
	// From bills To.
	From string
	To   string
	// ToUser is set (and To empty) on the source domain's invoice to
	// the originator.
	ToUser identity.DN
	Bytes  int64
	Amount Money
}

// Party describes one domain's pricing on a settlement path.
type Party struct {
	// Domain is the administrative domain name.
	Domain string
	// TransitRate is what the domain charges its upstream neighbour
	// per GB entering through it (the SLA price).
	TransitRate Rate
}

// SettlePath produces the transitive invoice chain for a usage along
// the ordered domain path [source, ..., destination]. The destination
// bills its upstream neighbour at its transit rate; every transit
// domain bills upstream what it owes downstream plus its own transit
// rate; the source domain bills the user the accumulated total plus
// its own rate.
func SettlePath(path []Party, user identity.DN, usage Usage) ([]Invoice, error) {
	if len(path) == 0 {
		return nil, fmt.Errorf("billing: empty path")
	}
	if usage.Bytes < 0 {
		return nil, fmt.Errorf("billing: negative usage")
	}
	var invoices []Invoice
	var owed Money
	// Walk destination -> source.
	for i := len(path) - 1; i >= 1; i-- {
		amount := owed + path[i].TransitRate.Charge(usage.Bytes)
		invoices = append(invoices, Invoice{
			RARID:  usage.RARID,
			From:   path[i].Domain,
			To:     path[i-1].Domain,
			Bytes:  usage.Bytes,
			Amount: amount,
		})
		owed = amount
	}
	// Source bills the originator.
	total := owed + path[0].TransitRate.Charge(usage.Bytes)
	invoices = append(invoices, Invoice{
		RARID:  usage.RARID,
		From:   path[0].Domain,
		ToUser: user,
		Bytes:  usage.Bytes,
		Amount: total,
	})
	return invoices, nil
}

// Ledger accumulates usage per reservation for one domain. It is safe
// for concurrent use.
type Ledger struct {
	domain string

	mu    sync.Mutex
	usage map[string]*Usage
}

// NewLedger creates a ledger for domain.
func NewLedger(domain string) *Ledger {
	return &Ledger{domain: domain, usage: make(map[string]*Usage)}
}

// Domain returns the owning domain.
func (l *Ledger) Domain() string { return l.domain }

// Record adds carried bytes for a reservation.
func (l *Ledger) Record(rarID string, bytes int64, bw units.Bandwidth) error {
	if bytes < 0 {
		return fmt.Errorf("billing: negative bytes")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	u := l.usage[rarID]
	if u == nil {
		u = &Usage{RARID: rarID, Bandwidth: bw}
		l.usage[rarID] = u
	}
	u.Bytes += bytes
	return nil
}

// Usage returns the accumulated usage for a reservation.
func (l *Ledger) Usage(rarID string) (Usage, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	u, ok := l.usage[rarID]
	if !ok {
		return Usage{}, false
	}
	return *u, true
}

// Close settles and removes a reservation's usage.
func (l *Ledger) Close(rarID string) (Usage, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	u, ok := l.usage[rarID]
	if !ok {
		return Usage{}, false
	}
	delete(l.usage, rarID)
	return *u, true
}

// Open lists reservations with recorded usage, sorted.
func (l *Ledger) Open() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.usage))
	for id := range l.usage {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
