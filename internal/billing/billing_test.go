package billing

import (
	"sync"
	"testing"
	"testing/quick"

	"e2eqos/internal/identity"
	"e2eqos/internal/units"
)

var alice = identity.NewDN("Grid", "DomainA", "Alice")

func path3() []Party {
	return []Party{
		{Domain: "DomainA", TransitRate: 100_000}, // 0.10 per GB
		{Domain: "DomainB", TransitRate: 50_000},  // 0.05 per GB
		{Domain: "DomainC", TransitRate: 200_000}, // 0.20 per GB
	}
}

func TestRateCharge(t *testing.T) {
	r := Rate(1_000_000) // 1.00 per GB
	if got := r.Charge(1_000_000_000); got != 1_000_000 {
		t.Errorf("1GB at 1/GB = %v, want 1.000000", got)
	}
	if got := r.Charge(500_000_000); got != 500_000 {
		t.Errorf("0.5GB = %v", got)
	}
	if got := r.Charge(0); got != 0 {
		t.Errorf("0B = %v", got)
	}
}

func TestMoneyString(t *testing.T) {
	if Money(1_500_000).String() != "1.500000" {
		t.Errorf("got %s", Money(1_500_000).String())
	}
	if Money(42).String() != "0.000042" {
		t.Errorf("got %s", Money(42).String())
	}
}

func TestSettlePathTransitiveChain(t *testing.T) {
	usage := Usage{RARID: "RAR-1", Bytes: 10_000_000_000} // 10 GB
	invoices, err := SettlePath(path3(), alice, usage)
	if err != nil {
		t.Fatal(err)
	}
	// C bills B; B bills A; A bills Alice.
	if len(invoices) != 3 {
		t.Fatalf("invoices = %d, want 3", len(invoices))
	}
	cToB, bToA, aToUser := invoices[0], invoices[1], invoices[2]
	if cToB.From != "DomainC" || cToB.To != "DomainB" {
		t.Errorf("invoice 0 = %+v", cToB)
	}
	if bToA.From != "DomainB" || bToA.To != "DomainA" {
		t.Errorf("invoice 1 = %+v", bToA)
	}
	if aToUser.From != "DomainA" || aToUser.ToUser != alice || aToUser.To != "" {
		t.Errorf("invoice 2 = %+v", aToUser)
	}
	// 10 GB: C charges 2.00; B passes it on plus 0.50 = 2.50; A bills
	// Alice 2.50 + 1.00 = 3.50.
	if cToB.Amount != 2_000_000 {
		t.Errorf("C->B = %s, want 2.000000", cToB.Amount)
	}
	if bToA.Amount != 2_500_000 {
		t.Errorf("B->A = %s, want 2.500000", bToA.Amount)
	}
	if aToUser.Amount != 3_500_000 {
		t.Errorf("A->user = %s, want 3.500000", aToUser.Amount)
	}
}

func TestSettlePathSingleDomain(t *testing.T) {
	invoices, err := SettlePath(path3()[:1], alice, Usage{RARID: "r", Bytes: 1_000_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(invoices) != 1 || invoices[0].ToUser != alice {
		t.Fatalf("invoices = %+v", invoices)
	}
	if invoices[0].Amount != 100_000 {
		t.Errorf("amount = %s", invoices[0].Amount)
	}
}

func TestSettlePathErrors(t *testing.T) {
	if _, err := SettlePath(nil, alice, Usage{}); err == nil {
		t.Error("empty path settled")
	}
	if _, err := SettlePath(path3(), alice, Usage{Bytes: -1}); err == nil {
		t.Error("negative usage settled")
	}
}

// Property: the user's invoice always equals the sum of every domain's
// own transit charge — no money is created or destroyed along the
// chain.
func TestSettlementConservation(t *testing.T) {
	f := func(rates []uint32, gb uint16) bool {
		if len(rates) == 0 {
			return true
		}
		if len(rates) > 12 {
			rates = rates[:12]
		}
		path := make([]Party, len(rates))
		var want Money
		bytes := int64(gb) * 1_000_000_000
		for i, r := range rates {
			rate := Rate(r % 10_000_000)
			path[i] = Party{Domain: string(rune('A' + i)), TransitRate: rate}
			want += rate.Charge(bytes)
		}
		invoices, err := SettlePath(path, alice, Usage{RARID: "p", Bytes: bytes})
		if err != nil {
			return false
		}
		return invoices[len(invoices)-1].Amount == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLedger(t *testing.T) {
	l := NewLedger("DomainB")
	if l.Domain() != "DomainB" {
		t.Errorf("domain = %s", l.Domain())
	}
	if err := l.Record("RAR-1", 500, 10*units.Mbps); err != nil {
		t.Fatal(err)
	}
	if err := l.Record("RAR-1", 250, 10*units.Mbps); err != nil {
		t.Fatal(err)
	}
	if err := l.Record("RAR-2", 100, units.Mbps); err != nil {
		t.Fatal(err)
	}
	u, ok := l.Usage("RAR-1")
	if !ok || u.Bytes != 750 {
		t.Errorf("usage = %+v ok=%v", u, ok)
	}
	open := l.Open()
	if len(open) != 2 || open[0] != "RAR-1" {
		t.Errorf("open = %v", open)
	}
	closed, ok := l.Close("RAR-1")
	if !ok || closed.Bytes != 750 {
		t.Errorf("close = %+v ok=%v", closed, ok)
	}
	if _, ok := l.Usage("RAR-1"); ok {
		t.Error("closed usage still present")
	}
	if _, ok := l.Close("RAR-1"); ok {
		t.Error("double close succeeded")
	}
	if err := l.Record("RAR-3", -1, 0); err == nil {
		t.Error("negative bytes recorded")
	}
}

func TestLedgerConcurrent(t *testing.T) {
	l := NewLedger("X")
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = l.Record("RAR-1", 10, units.Mbps)
		}()
	}
	wg.Wait()
	u, _ := l.Usage("RAR-1")
	if u.Bytes != 1000 {
		t.Errorf("bytes = %d, want 1000", u.Bytes)
	}
}
