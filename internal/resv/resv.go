// Package resv implements GARA-style advance reservations for a single
// resource pool: a table of bandwidth commitments over time windows
// with admission control against a fixed capacity. Each bandwidth
// broker owns one table per engineered path/aggregate; the CPU and
// disk managers reuse the same mechanics with different units.
package resv

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"e2eqos/internal/identity"
	"e2eqos/internal/units"
)

// Status is the lifecycle state of a reservation.
type Status int

// Reservation states.
const (
	// Granted means admitted and (within its window) enforceable.
	Granted Status = iota
	// Cancelled means withdrawn; it no longer counts against capacity.
	Cancelled
)

func (s Status) String() string {
	switch s {
	case Granted:
		return "granted"
	case Cancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Reservation is one admitted bandwidth commitment.
type Reservation struct {
	Handle    string
	User      identity.DN
	SrcHost   string
	DstHost   string
	Bandwidth units.Bandwidth
	Window    units.Window
	Status    Status
	// Tunnel marks aggregate reservations usable for sub-flow
	// allocation by authorized third parties.
	Tunnel bool
	// Created is the admission wall-clock time.
	Created time.Time
	// CancelledAt records when Cancel withdrew the reservation (zero
	// while granted); compaction uses it as the retirement timestamp
	// for entries whose window would otherwise keep them around.
	CancelledAt time.Time `json:",omitempty"`
}

// ActiveAt reports whether the reservation consumes capacity at t.
func (r *Reservation) ActiveAt(t time.Time) bool {
	return r.Status == Granted && r.Window.Contains(t)
}

// DefaultRetention is how long a dead reservation (cancelled, or past
// its window end) stays visible before compaction removes it. The
// grace period exists for status queries and operator tooling that
// look up a reservation shortly after it ends; a long-running broker
// must not accumulate every reservation it ever admitted.
const DefaultRetention = 5 * time.Minute

// sweepEvery is how many admissions pass between automatic compaction
// sweeps. Admission is the only path that grows the table, so tying
// the sweep to it bounds the dead-entry population without a
// background goroutine: at most sweepEvery corpses accumulate between
// sweeps, amortising the O(n) scan to O(1) per admit.
const sweepEvery = 128

// Table is an admission-controlled reservation table for one capacity
// pool. It is safe for concurrent use.
//
// Dead entries — cancelled reservations and reservations whose window
// has ended — are removed once they have been dead longer than the
// retention period, either by an explicit Compact call or by the
// automatic sweep piggybacked on Admit. Lookup, Valid, All and
// Snapshot therefore do not see reservations past their retention;
// callers needing a permanent record must keep their own (the broker's
// structured log is that record).
type Table struct {
	mu        sync.Mutex
	name      string
	capacity  units.Bandwidth
	resv      map[string]*Reservation
	seq       int64
	retention time.Duration
	clock     func() time.Time
	// admits counts admissions since the last automatic sweep.
	admits int
	// emit, when set, receives one typed journal event per applied
	// mutation (see journaled.go). Mutators collect events under mu and
	// invoke emit after releasing it, so the hook may block on I/O or
	// take locks of its own without stalling the table.
	emit func(op string, data any)
}

// NewTable creates a table managing the given capacity.
func NewTable(name string, capacity units.Bandwidth) (*Table, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("resv: non-positive capacity %v", capacity)
	}
	return &Table{
		name:      name,
		capacity:  capacity,
		resv:      make(map[string]*Reservation),
		retention: DefaultRetention,
		clock:     time.Now,
	}, nil
}

// SetClock injects the time source used for admission stamps and
// compaction horizons (tests, simulated time). Nil restores time.Now.
func (t *Table) SetClock(clock func() time.Time) {
	if clock == nil {
		clock = time.Now
	}
	t.mu.Lock()
	t.clock = clock
	t.mu.Unlock()
}

// SetRetention changes how long dead reservations stay visible before
// compaction removes them. Zero or negative disables compaction
// entirely, including the automatic sweep.
func (t *Table) SetRetention(d time.Duration) {
	t.mu.Lock()
	t.retention = d
	t.mu.Unlock()
}

// Capacity returns the managed capacity.
func (t *Table) Capacity() units.Bandwidth { return t.capacity }

// Name returns the table's label.
func (t *Table) Name() string { return t.name }

// maxCommittedLocked computes the peak committed bandwidth during w,
// optionally ignoring one handle. Caller holds t.mu.
func (t *Table) maxCommittedLocked(w units.Window, ignore string) units.Bandwidth {
	type edge struct {
		at    time.Time
		delta units.Bandwidth
	}
	var edges []edge
	for h, r := range t.resv {
		if h == ignore || r.Status != Granted || !r.Window.Overlaps(w) {
			continue
		}
		iv, _ := r.Window.Intersect(w)
		edges = append(edges, edge{iv.Start, r.Bandwidth}, edge{iv.End, -r.Bandwidth})
	}
	sort.Slice(edges, func(i, j int) bool {
		if !edges[i].at.Equal(edges[j].at) {
			return edges[i].at.Before(edges[j].at)
		}
		// Process releases before acquisitions at the same instant
		// (half-open windows).
		return edges[i].delta < edges[j].delta
	})
	var cur, max units.Bandwidth
	for _, e := range edges {
		cur += e.delta
		if cur > max {
			max = cur
		}
	}
	return max
}

// Available returns the guaranteed headroom throughout w.
func (t *Table) Available(w units.Window) units.Bandwidth {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.capacity - t.maxCommittedLocked(w, "")
}

// CommittedAt returns the committed bandwidth at instant at.
func (t *Table) CommittedAt(at time.Time) units.Bandwidth {
	t.mu.Lock()
	defer t.mu.Unlock()
	var sum units.Bandwidth
	for _, r := range t.resv {
		if r.ActiveAt(at) {
			sum += r.Bandwidth
		}
	}
	return sum
}

// AdmitRequest describes a candidate reservation.
type AdmitRequest struct {
	User      identity.DN
	SrcHost   string
	DstHost   string
	Bandwidth units.Bandwidth
	Window    units.Window
	Tunnel    bool
}

// Admit runs admission control and, on success, commits the
// reservation and returns it.
func (t *Table) Admit(req AdmitRequest) (*Reservation, error) {
	r, events, err := t.admit(req)
	t.emitAll(events)
	return r, err
}

func (t *Table) admit(req AdmitRequest) (*Reservation, []event, error) {
	if req.Bandwidth <= 0 {
		return nil, nil, fmt.Errorf("resv: non-positive bandwidth %v", req.Bandwidth)
	}
	if !req.Window.Valid() {
		return nil, nil, fmt.Errorf("resv: invalid window %v", req.Window)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.clock()
	var events []event
	t.admits++
	if t.admits >= sweepEvery {
		t.admits = 0
		if swept := t.compactLocked(now); len(swept) > 0 && t.emit != nil {
			events = append(events, compactEvent(swept))
		}
	}
	peak := t.maxCommittedLocked(req.Window, "")
	if peak+req.Bandwidth > t.capacity {
		return nil, events, fmt.Errorf("resv: %s: insufficient capacity: peak committed %v + request %v > capacity %v",
			t.name, peak, req.Bandwidth, t.capacity)
	}
	t.seq++
	r := &Reservation{
		Handle:    fmt.Sprintf("%s-%d", t.name, t.seq),
		User:      req.User,
		SrcHost:   req.SrcHost,
		DstHost:   req.DstHost,
		Bandwidth: req.Bandwidth,
		Window:    req.Window,
		Status:    Granted,
		Tunnel:    req.Tunnel,
		Created:   now,
	}
	t.resv[r.Handle] = r
	if t.emit != nil {
		events = append(events, admitEvent(r, t.seq))
	}
	return r, events, nil
}

// Cancel withdraws a reservation, releasing its capacity.
func (t *Table) Cancel(handle string) error {
	events, err := t.cancel(handle)
	t.emitAll(events)
	return err
}

func (t *Table) cancel(handle string) ([]event, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.resv[handle]
	if !ok {
		return nil, fmt.Errorf("resv: unknown handle %q", handle)
	}
	if r.Status == Cancelled {
		return nil, fmt.Errorf("resv: handle %q already cancelled", handle)
	}
	r.Status = Cancelled
	r.CancelledAt = t.clock()
	if t.emit != nil {
		return []event{cancelEvent(handle, r.CancelledAt)}, nil
	}
	return nil, nil
}

// Compact removes reservations that have been dead — cancelled, or
// past their window end — for longer than the retention period as of
// now, and reports how many were removed. Admit sweeps automatically
// every sweepEvery admissions; Compact exists for callers that want
// deterministic timing (periodic maintenance, tests, snapshotting a
// long-idle table).
func (t *Table) Compact(now time.Time) int {
	t.mu.Lock()
	removed := t.compactLocked(now)
	var events []event
	if len(removed) > 0 && t.emit != nil {
		events = append(events, compactEvent(removed))
	}
	t.mu.Unlock()
	t.emitAll(events)
	return len(removed)
}

// compactLocked removes entries dead since before the retention
// horizon and returns their handles. Caller holds t.mu.
func (t *Table) compactLocked(now time.Time) []string {
	if t.retention <= 0 {
		return nil
	}
	horizon := now.Add(-t.retention)
	var removed []string
	for h, r := range t.resv {
		var deadSince time.Time
		switch {
		case r.Status == Cancelled:
			// Pre-compaction snapshots have no CancelledAt; their window
			// end is the only retirement time on record.
			deadSince = r.CancelledAt
			if deadSince.IsZero() || r.Window.End.Before(deadSince) {
				deadSince = r.Window.End
			}
		default:
			deadSince = r.Window.End
		}
		if deadSince.Before(horizon) {
			delete(t.resv, h)
			removed = append(removed, h)
		}
	}
	return removed
}

// Len reports the number of reservations currently held, dead or
// alive; compaction observability for tests and gauges.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.resv)
}

// Modify atomically changes the bandwidth of an existing reservation,
// re-running admission for the delta. Used by tunnel resizing.
func (t *Table) Modify(handle string, bw units.Bandwidth) error {
	events, err := t.modify(handle, bw)
	t.emitAll(events)
	return err
}

func (t *Table) modify(handle string, bw units.Bandwidth) ([]event, error) {
	if bw <= 0 {
		return nil, fmt.Errorf("resv: non-positive bandwidth %v", bw)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.resv[handle]
	if !ok || r.Status != Granted {
		return nil, fmt.Errorf("resv: no granted reservation %q", handle)
	}
	peak := t.maxCommittedLocked(r.Window, handle)
	if peak+bw > t.capacity {
		return nil, fmt.Errorf("resv: %s: cannot grow %q to %v: peak committed %v, capacity %v",
			t.name, handle, bw, peak, t.capacity)
	}
	r.Bandwidth = bw
	if t.emit != nil {
		return []event{modifyEvent(handle, bw)}, nil
	}
	return nil, nil
}

// Lookup returns a copy of the reservation for handle.
func (t *Table) Lookup(handle string) (Reservation, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.resv[handle]
	if !ok {
		return Reservation{}, false
	}
	return *r, true
}

// Valid reports whether handle names a granted reservation that covers
// instant at — the check behind Figure 6's HasValidCPUResv(RAR).
func (t *Table) Valid(handle string, at time.Time) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.resv[handle]
	return ok && r.ActiveAt(at)
}

// Timeline samples the committed bandwidth across w at the given
// resolution, for capacity-planning views: it returns samples+1 values
// covering [w.Start, w.End].
func (t *Table) Timeline(w units.Window, samples int) []units.Bandwidth {
	if samples < 1 || !w.Valid() {
		return nil
	}
	out := make([]units.Bandwidth, samples+1)
	step := w.Duration() / time.Duration(samples)
	for i := 0; i <= samples; i++ {
		out[i] = t.CommittedAt(w.Start.Add(time.Duration(i) * step))
	}
	return out
}

// All returns copies of all reservations still held, sorted by handle.
// Entries removed by compaction are not included.
func (t *Table) All() []Reservation {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Reservation, 0, len(t.resv))
	for _, r := range t.resv {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Handle < out[j].Handle })
	return out
}
