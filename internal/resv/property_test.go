package resv

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"e2eqos/internal/identity"
	"e2eqos/internal/journal"
	"e2eqos/internal/units"
)

// reconstruct rebuilds a table from whatever a journal directory holds
// — the crash-recovery path, without a live journal.
func reconstruct(t *testing.T, dir, name string, capacity units.Bandwidth) *Table {
	t.Helper()
	rec, err := journal.Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	var tbl *Table
	if rec.Snapshot != nil {
		tbl, err = RestoreTable(rec.Snapshot)
		if err != nil {
			t.Fatalf("RestoreTable: %v", err)
		}
	} else {
		tbl, err = NewTable(name, capacity)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Replay(tbl, rec.Records); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return tbl
}

// TestJournalCrashReplayProperty drives a plain table and its
// journaled twin through the same seeded random mutation sequence —
// cut off at a random point per trial — then crashes the journal and
// asserts the table reconstructed from disk is byte-identical to the
// plain table's snapshot. Checkpoints, fsync policies, clock jumps,
// compaction sweeps and appended garbage all vary per trial.
func TestJournalCrashReplayProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20010807))
	policies := []journal.Policy{journal.FsyncBatch, journal.FsyncAlways, journal.FsyncNever}

	const trials = 25
	for trial := 0; trial < trials; trial++ {
		dir := t.TempDir()
		clk := &fakeClock{now: t0}
		capacity := units.Bandwidth(50+rng.Intn(100)) * units.Mbps

		plain, err := NewTable("net-prop", capacity)
		if err != nil {
			t.Fatal(err)
		}
		plain.SetClock(clk.Now)
		twin, err := NewTable("net-prop", capacity)
		if err != nil {
			t.Fatal(err)
		}
		twin.SetClock(clk.Now)

		j, rec, err := journal.Open(dir, journal.Options{
			Fsync:         policies[rng.Intn(len(policies))],
			BatchInterval: time.Millisecond,
		})
		if err != nil {
			t.Fatalf("trial %d: Open: %v", trial, err)
		}
		if rec.Snapshot != nil || len(rec.Records) != 0 {
			t.Fatalf("trial %d: fresh dir not empty", trial)
		}
		jt := NewJournaledTable(twin, j)

		// The random cut point: each trial stops the mutation stream at
		// a different place, so recovery is exercised against every
		// kind of tail (empty, admit-heavy, post-compact, mid-churn).
		nOps := 20 + rng.Intn(200)
		var handles []string
		for i := 0; i < nOps; i++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // admit (sometimes over capacity: both must refuse)
				req := AdmitRequest{
					User:      identity.DN(fmt.Sprintf("/O=Grid/CN=user%d", rng.Intn(5))),
					SrcHost:   "a.example",
					DstHost:   "b.example",
					Bandwidth: units.Bandwidth(1+rng.Intn(80)) * units.Mbps,
					Window:    win(rng.Intn(600)-120, 1+rng.Intn(120)),
					Tunnel:    rng.Intn(8) == 0,
				}
				r1, err1 := plain.Admit(req)
				r2, err2 := jt.Admit(req)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("trial %d op %d: admit diverged: %v vs %v", trial, i, err1, err2)
				}
				if err1 == nil {
					if r1.Handle != r2.Handle {
						t.Fatalf("trial %d op %d: handles diverged: %s vs %s", trial, i, r1.Handle, r2.Handle)
					}
					handles = append(handles, r1.Handle)
				}
			case 5, 6: // cancel a random (possibly already-cancelled) handle
				if len(handles) == 0 {
					continue
				}
				h := handles[rng.Intn(len(handles))]
				err1 := plain.Cancel(h)
				err2 := jt.Cancel(h)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("trial %d op %d: cancel(%s) diverged: %v vs %v", trial, i, h, err1, err2)
				}
			case 7: // modify a random handle to an absolute new bandwidth
				if len(handles) == 0 {
					continue
				}
				h := handles[rng.Intn(len(handles))]
				bw := units.Bandwidth(1+rng.Intn(80)) * units.Mbps
				err1 := plain.Modify(h, bw)
				err2 := jt.Modify(h, bw)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("trial %d op %d: modify(%s) diverged: %v vs %v", trial, i, h, err1, err2)
				}
			case 8: // advance the shared clock (ages entries toward compaction)
				clk.Set(clk.Now().Add(time.Duration(rng.Intn(10)) * time.Minute))
			case 9: // explicit compact, or a journal checkpoint
				if rng.Intn(2) == 0 {
					now := clk.Now()
					n1 := plain.Compact(now)
					n2 := jt.Compact(now)
					if n1 != n2 {
						t.Fatalf("trial %d op %d: compact diverged: %d vs %d", trial, i, n1, n2)
					}
				} else if err := jt.Checkpoint(); err != nil {
					t.Fatalf("trial %d op %d: checkpoint: %v", trial, i, err)
				}
			}
		}

		// Crash. Sync first so the batch buffer reaches the file — the
		// loss window of an unsynced batch is journal_test territory;
		// here the property is that what reached disk reconstructs
		// exactly.
		if err := j.Sync(); err != nil {
			t.Fatalf("trial %d: Sync: %v", trial, err)
		}
		j.Crash()

		// Half the trials die mid-write: garbage lands after the last
		// good record and recovery must shrug it off.
		if rng.Intn(2) == 0 {
			f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			garbage := make([]byte, 1+rng.Intn(64))
			rng.Read(garbage)
			f.Write(garbage)
			f.Close()
		}

		rebuilt := reconstruct(t, dir, "net-prop", capacity)
		want, err := plain.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		got, err := rebuilt.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("trial %d (%d ops): reconstructed state differs\n want: %s\n  got: %s",
				trial, nOps, want, got)
		}
	}
}

// TestJournaledTableAutoSweepIsJournaled pins the subtle case: the
// compaction sweep piggybacked on Admit (every sweepEvery admissions)
// removes entries without any explicit Compact call, and the removal
// must still reach the journal or recovery resurrects corpses.
func TestJournaledTableAutoSweepIsJournaled(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{now: t0}
	capacity := 10000 * units.Mbps
	tbl, err := NewTable("net-sweep", capacity)
	if err != nil {
		t.Fatal(err)
	}
	tbl.SetClock(clk.Now)
	j, _, err := journal.Open(dir, journal.Options{Fsync: journal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	jt := NewJournaledTable(tbl, j)

	// One short-lived reservation, then age it far past retention.
	if _, err := jt.Admit(AdmitRequest{Bandwidth: units.Mbps, Window: win(0, 1)}); err != nil {
		t.Fatal(err)
	}
	clk.Set(t0.Add(24 * time.Hour))
	// sweepEvery admissions trigger exactly one automatic sweep.
	for i := 0; i < sweepEvery; i++ {
		if _, err := jt.Admit(AdmitRequest{Bandwidth: units.Mbps, Window: win(1500, 10)}); err != nil {
			t.Fatal(err)
		}
	}
	if jt.Len() != sweepEvery {
		t.Fatalf("table holds %d entries, want %d (first entry swept)", jt.Len(), sweepEvery)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	j.Crash()

	rebuilt := reconstruct(t, dir, "net-sweep", capacity)
	want, _ := tbl.Snapshot()
	got, _ := rebuilt.Snapshot()
	if !bytes.Equal(want, got) {
		t.Fatalf("auto-sweep not journaled:\n want: %s\n  got: %s", want, got)
	}
}
