package resv

import (
	"fmt"

	"e2eqos/internal/identity"
	"e2eqos/internal/units"
	"e2eqos/internal/wire"
)

// Binary codecs for the table's journal records and snapshot
// (DESIGN.md §6.6). The AppendBinary/DecodeBinary pairs satisfy the
// journal's BinaryRecord/BinaryDecoder interfaces, putting every
// table mutation on the journal's allocation-free append path.
//
// Reservation fields: 1=handle 2=user 3=src_host 4=dst_host
// 5=bandwidth 6=window_start 7=window_end 8=status 9=tunnel
// 10=created 11=cancelled_at.
func (r *Reservation) appendFields(buf []byte) []byte {
	buf = wire.AppendString(buf, 1, r.Handle)
	buf = wire.AppendString(buf, 2, string(r.User))
	buf = wire.AppendString(buf, 3, r.SrcHost)
	buf = wire.AppendString(buf, 4, r.DstHost)
	buf = wire.AppendInt(buf, 5, int64(r.Bandwidth))
	buf = wire.AppendTime(buf, 6, r.Window.Start)
	buf = wire.AppendTime(buf, 7, r.Window.End)
	buf = wire.AppendInt(buf, 8, int64(r.Status))
	buf = wire.AppendBool(buf, 9, r.Tunnel)
	buf = wire.AppendTime(buf, 10, r.Created)
	buf = wire.AppendTime(buf, 11, r.CancelledAt)
	return buf
}

func (r *Reservation) decodeFields(d *wire.Dec) error {
	for d.More() {
		f, wt := d.Tag()
		switch {
		case f == 1 && wt == wire.TBytes:
			r.Handle = d.String()
		case f == 2 && wt == wire.TBytes:
			r.User = identity.DN(d.String())
		case f == 3 && wt == wire.TBytes:
			r.SrcHost = d.String()
		case f == 4 && wt == wire.TBytes:
			r.DstHost = d.String()
		case f == 5 && wt == wire.TVarint:
			r.Bandwidth = units.Bandwidth(d.Varint())
		case f == 6 && wt == wire.TBytes:
			r.Window.Start = d.Time()
		case f == 7 && wt == wire.TBytes:
			r.Window.End = d.Time()
		case f == 8 && wt == wire.TVarint:
			r.Status = Status(d.Varint())
		case f == 9 && wt == wire.TVarint:
			r.Tunnel = d.Bool()
		case f == 10 && wt == wire.TBytes:
			r.Created = d.Time()
		case f == 11 && wt == wire.TBytes:
			r.CancelledAt = d.Time()
		default:
			d.Skip(wt)
		}
	}
	return d.Err()
}

// admitRec: 1=resv 2=seq.
func (a admitRec) AppendBinary(buf []byte) []byte {
	var start int
	buf, start = wire.BeginNested(buf, 1)
	buf = a.Resv.appendFields(buf)
	buf = wire.EndNested(buf, start)
	return wire.AppendInt(buf, 2, a.Seq)
}

func (a *admitRec) DecodeBinary(data []byte) error {
	d := wire.Dec{Buf: data}
	for d.More() {
		f, wt := d.Tag()
		switch {
		case f == 1 && wt == wire.TBytes:
			sub := wire.Dec{Buf: d.Bytes()}
			if err := a.Resv.decodeFields(&sub); err != nil {
				return err
			}
		case f == 2 && wt == wire.TVarint:
			a.Seq = d.Varint()
		default:
			d.Skip(wt)
		}
	}
	return d.Err()
}

// modifyRec: 1=handle 2=bandwidth.
func (m modifyRec) AppendBinary(buf []byte) []byte {
	buf = wire.AppendString(buf, 1, m.Handle)
	return wire.AppendInt(buf, 2, int64(m.Bandwidth))
}

func (m *modifyRec) DecodeBinary(data []byte) error {
	d := wire.Dec{Buf: data}
	for d.More() {
		f, wt := d.Tag()
		switch {
		case f == 1 && wt == wire.TBytes:
			m.Handle = d.String()
		case f == 2 && wt == wire.TVarint:
			m.Bandwidth = units.Bandwidth(d.Varint())
		default:
			d.Skip(wt)
		}
	}
	return d.Err()
}

// cancelRec: 1=handle 2=cancelled_at.
func (c cancelRec) AppendBinary(buf []byte) []byte {
	buf = wire.AppendString(buf, 1, c.Handle)
	return wire.AppendTime(buf, 2, c.CancelledAt)
}

func (c *cancelRec) DecodeBinary(data []byte) error {
	d := wire.Dec{Buf: data}
	for d.More() {
		f, wt := d.Tag()
		switch {
		case f == 1 && wt == wire.TBytes:
			c.Handle = d.String()
		case f == 2 && wt == wire.TBytes:
			c.CancelledAt = d.Time()
		default:
			d.Skip(wt)
		}
	}
	return d.Err()
}

// compactRec: repeated 1=removed handle.
func (c compactRec) AppendBinary(buf []byte) []byte {
	for _, h := range c.Removed {
		buf = wire.AppendTag(buf, 1, wire.TBytes)
		buf = wire.AppendUvarint(buf, uint64(len(h)))
		buf = append(buf, h...)
	}
	return buf
}

func (c *compactRec) DecodeBinary(data []byte) error {
	d := wire.Dec{Buf: data}
	for d.More() {
		f, wt := d.Tag()
		if f == 1 && wt == wire.TBytes {
			c.Removed = append(c.Removed, d.String())
		} else {
			d.Skip(wt)
		}
	}
	return d.Err()
}

// Table snapshot binary layout: snapMagic, snapVersion, then 1=name
// 2=capacity 3=seq 4=reservations (repeated, sorted by handle — the
// deterministic-bytes property the recovery tests assert on).
// RestoreTable still accepts the JSON form for snapshots rotated
// before the binary codec existed.
const (
	snapMagic   = 0xB2
	snapVersion = 1
)

func (s *snapshot) appendBinary(buf []byte) []byte {
	buf = append(buf, snapMagic, snapVersion)
	buf = wire.AppendString(buf, 1, s.Name)
	buf = wire.AppendInt(buf, 2, int64(s.Capacity))
	buf = wire.AppendInt(buf, 3, s.Seq)
	for i := range s.Reservations {
		var start int
		buf, start = wire.BeginNested(buf, 4)
		buf = s.Reservations[i].appendFields(buf)
		buf = wire.EndNested(buf, start)
	}
	return buf
}

func (s *snapshot) decodeBinary(data []byte) error {
	if len(data) < 2 || data[0] != snapMagic {
		return fmt.Errorf("resv: not a binary snapshot")
	}
	if data[1] != snapVersion {
		return fmt.Errorf("resv: unsupported snapshot version %d", data[1])
	}
	d := wire.Dec{Buf: data[2:]}
	for d.More() {
		f, wt := d.Tag()
		switch {
		case f == 1 && wt == wire.TBytes:
			s.Name = d.String()
		case f == 2 && wt == wire.TVarint:
			s.Capacity = units.Bandwidth(d.Varint())
		case f == 3 && wt == wire.TVarint:
			s.Seq = d.Varint()
		case f == 4 && wt == wire.TBytes:
			sub := wire.Dec{Buf: d.Bytes()}
			var r Reservation
			if err := r.decodeFields(&sub); err != nil {
				return err
			}
			s.Reservations = append(s.Reservations, r)
		default:
			d.Skip(wt)
		}
	}
	return d.Err()
}
