package resv

import (
	"encoding/json"
	"fmt"
	"sort"

	"e2eqos/internal/units"
)

// snapshot is the persisted form of a table.
type snapshot struct {
	Name         string          `json:"name"`
	Capacity     units.Bandwidth `json:"capacity"`
	Seq          int64           `json:"seq"`
	Reservations []Reservation   `json:"reservations"`
}

// Snapshot serialises the table so a restarting broker can restore its
// committed state. Reservations removed by compaction are absent: a
// snapshot captures the table's live admission state, not its history.
// Output is deterministic — reservations are sorted by handle, and the
// binary encoding is canonical — so two tables holding the same state
// snapshot to identical bytes, the property the journal's
// crash-recovery tests assert on.
func (t *Table) Snapshot() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := snapshot{Name: t.name, Capacity: t.capacity, Seq: t.seq}
	for _, r := range t.resv {
		s.Reservations = append(s.Reservations, *r)
	}
	sort.Slice(s.Reservations, func(i, j int) bool {
		return s.Reservations[i].Handle < s.Reservations[j].Handle
	})
	return s.appendBinary(nil), nil
}

// RestoreTable rebuilds a table from a snapshot in either encoding
// (binary, or the JSON written before the binary codec existed). The
// restored state is validated: committed bandwidth may not exceed the
// capacity at any reservation boundary.
func RestoreTable(data []byte) (*Table, error) {
	var s snapshot
	if len(data) > 0 && data[0] == snapMagic {
		if err := s.decodeBinary(data); err != nil {
			return nil, fmt.Errorf("resv: restore: %w", err)
		}
	} else if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("resv: restore: %w", err)
	}
	t, err := NewTable(s.Name, s.Capacity)
	if err != nil {
		return nil, fmt.Errorf("resv: restore: %w", err)
	}
	t.seq = s.Seq
	for i := range s.Reservations {
		r := s.Reservations[i]
		if r.Handle == "" || !r.Window.Valid() || r.Bandwidth <= 0 {
			return nil, fmt.Errorf("resv: restore: invalid reservation %q", r.Handle)
		}
		if _, dup := t.resv[r.Handle]; dup {
			return nil, fmt.Errorf("resv: restore: duplicate handle %q", r.Handle)
		}
		t.resv[r.Handle] = &r
	}
	// Validate the invariant over every granted reservation's window.
	for _, r := range t.resv {
		if r.Status != Granted {
			continue
		}
		if peak := t.maxCommittedLocked(r.Window, ""); peak > t.capacity {
			return nil, fmt.Errorf("resv: restore: snapshot overcommits %v > %v during %v",
				peak, t.capacity, r.Window)
		}
	}
	return t, nil
}

// ResetFrom replaces t's state with the snapshot's, in place: name,
// capacity, sequence counter and reservation set all come from the
// snapshot while the clock, retention and emission hook are kept. The
// table pointer stays valid — a replication follower installing a
// leader snapshot resets the table its gauges and handlers already
// hold, instead of swapping in a new one under their feet. The
// snapshot is fully validated (via RestoreTable) before any state is
// touched, so a corrupt snapshot leaves t unchanged.
func (t *Table) ResetFrom(data []byte) error {
	fresh, err := RestoreTable(data)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.name = fresh.name
	t.capacity = fresh.capacity
	t.resv = fresh.resv
	t.seq = fresh.seq
	t.admits = 0
	return nil
}
