package resv

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"e2eqos/internal/journal"
	"e2eqos/internal/units"
)

// TestSnapshotDeterministic pins the byte-determinism contract:
// snapshotting the same state — whatever order the map iterates in —
// must yield identical bytes, including after a restore round trip.
// Crash-recovery tests compare snapshots byte-for-byte and rely on
// this.
func TestSnapshotDeterministic(t *testing.T) {
	clk := &fakeClock{now: t0}
	tab := newTable(t, 100*units.Mbps)
	tab.SetClock(clk.Now)
	for i := 0; i < 20; i++ {
		if _, err := tab.Admit(AdmitRequest{Bandwidth: units.Mbps, Window: win(i, 10)}); err != nil {
			t.Fatal(err)
		}
	}
	first, err := tab.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := tab.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("snapshot of unchanged table varies between calls (iteration %d)", i)
		}
	}
	restored, err := RestoreTable(first)
	if err != nil {
		t.Fatal(err)
	}
	reSnap, err := restored.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, reSnap) {
		t.Fatalf("restore round trip changed snapshot bytes:\n want: %s\n  got: %s", first, reSnap)
	}
}

// TestSnapshotRoundTripPreservesClockSensitiveState covers the clock
// edge: CancelledAt and Created stamps must survive the round trip
// exactly, and compaction on the restored table must retire entries on
// the same schedule as the original would have.
func TestSnapshotRoundTripPreservesClockSensitiveState(t *testing.T) {
	clk := &fakeClock{now: t0}
	tab := newTable(t, 100*units.Mbps)
	tab.SetClock(clk.Now)

	r1, err := tab.Admit(AdmitRequest{Bandwidth: 10 * units.Mbps, Window: win(0, 30)})
	if err != nil {
		t.Fatal(err)
	}
	// Cancel 10 minutes in: CancelledAt = t0+10m even though the window
	// runs to t0+30m.
	clk.Set(t0.Add(10 * time.Minute))
	if err := tab.Cancel(r1.Handle); err != nil {
		t.Fatal(err)
	}

	data, err := tab.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreTable(data)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := restored.Lookup(r1.Handle)
	if !ok {
		t.Fatal("cancelled entry lost in round trip")
	}
	if !got.CancelledAt.Equal(t0.Add(10 * time.Minute)) {
		t.Errorf("CancelledAt = %v, want %v", got.CancelledAt, t0.Add(10*time.Minute))
	}
	if !got.Created.Equal(t0) {
		t.Errorf("Created = %v, want %v", got.Created, t0)
	}

	// Retirement schedule: dead since t0+10m (CancelledAt), default
	// retention 5m. Just short of t0+15m the entry must survive
	// compaction; just past it, it must go — on the restored table
	// exactly like the original.
	if n := restored.Compact(t0.Add(15*time.Minute - time.Second)); n != 0 {
		t.Errorf("compacted %d entries before the retention horizon", n)
	}
	if n := restored.Compact(t0.Add(15*time.Minute + time.Second)); n != 1 {
		t.Errorf("compacted %d entries after the retention horizon, want 1", n)
	}
}

// TestSnapshotRoundTripRetentionOverride covers the retention edge:
// SetRetention is runtime configuration, not persisted state — a
// restored table starts back at DefaultRetention, and a zero-retention
// (compaction-disabled) original must not leak that setting through
// the snapshot.
func TestSnapshotRoundTripRetentionOverride(t *testing.T) {
	clk := &fakeClock{now: t0}
	tab := newTable(t, 100*units.Mbps)
	tab.SetClock(clk.Now)
	tab.SetRetention(0) // compaction disabled on the original

	r, err := tab.Admit(AdmitRequest{Bandwidth: units.Mbps, Window: win(0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	clk.Set(t0.Add(24 * time.Hour))
	if n := tab.Compact(clk.Now()); n != 0 {
		t.Fatalf("zero-retention table compacted %d entries", n)
	}

	data, err := tab.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreTable(data)
	if err != nil {
		t.Fatal(err)
	}
	// The long-dead entry rode the snapshot (live-state capture) …
	if _, ok := restored.Lookup(r.Handle); !ok {
		t.Fatal("entry missing after restore")
	}
	// … and the restored table compacts on the default schedule again.
	if n := restored.Compact(t0.Add(24 * time.Hour)); n != 1 {
		t.Errorf("restored table compacted %d entries, want 1 (DefaultRetention restored)", n)
	}
}

// TestSnapshotRoundTripCancelledWithoutStamp covers the legacy
// cancelled-entry edge: snapshots written before CancelledAt existed
// carry cancelled entries with a zero stamp, and restore + compaction
// must fall back to the window end as the retirement time instead of
// treating zero time as "dead since forever".
func TestSnapshotRoundTripCancelledWithoutStamp(t *testing.T) {
	legacy := `{"name":"net-old","capacity":100000000,"seq":1,"reservations":[
	 {"Handle":"net-old-1","Bandwidth":1000000,
	  "Window":{"Start":"2001-08-07T09:00:00Z","End":"2001-08-07T10:00:00Z"},
	  "Status":1}]}`
	restored, err := RestoreTable([]byte(legacy))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := restored.Lookup("net-old-1")
	if !ok || got.Status != Cancelled || !got.CancelledAt.IsZero() {
		t.Fatalf("restored legacy entry = %+v ok=%v", got, ok)
	}
	// Window ends 10:00; default retention 5m. Within the grace period
	// the corpse stays; after it, it goes.
	end := time.Date(2001, 8, 7, 10, 0, 0, 0, time.UTC)
	if n := restored.Compact(end.Add(4 * time.Minute)); n != 0 {
		t.Errorf("legacy cancelled entry compacted %d before window-end retention", n)
	}
	if n := restored.Compact(end.Add(6 * time.Minute)); n != 1 {
		t.Errorf("legacy cancelled entry compacted %d after retention, want 1", n)
	}
}

// TestSnapshotRoundTripThroughReplayIsIdempotent covers the
// snapshot-overlap edge the journal's rotation protocol depends on:
// replaying records whose effects a snapshot already contains must
// change nothing.
func TestSnapshotRoundTripThroughReplayIsIdempotent(t *testing.T) {
	clk := &fakeClock{now: t0}
	tab := newTable(t, 100*units.Mbps)
	tab.SetClock(clk.Now)
	r1, err := tab.Admit(AdmitRequest{Bandwidth: 10 * units.Mbps, Window: win(0, 30)})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Modify(r1.Handle, 20*units.Mbps); err != nil {
		t.Fatal(err)
	}
	r2, err := tab.Admit(AdmitRequest{Bandwidth: 5 * units.Mbps, Window: win(0, 30)})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Cancel(r2.Handle); err != nil {
		t.Fatal(err)
	}

	data, err := tab.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreTable(data)
	if err != nil {
		t.Fatal(err)
	}
	// Re-apply the full mutation history as journal records on top of
	// the already-final snapshot.
	mk := func(op string, payload any) journal.Record {
		b, err := json.Marshal(payload)
		if err != nil {
			t.Fatal(err)
		}
		return journal.Record{Op: op, Data: b}
	}
	recs := []journal.Record{
		mk(opAdmit, admitRec{Resv: mustLookup(t, tab, r1.Handle), Seq: 1}),
		mk(opModify, modifyRec{Handle: r1.Handle, Bandwidth: 20 * units.Mbps}),
		mk(opAdmit, admitRec{Resv: mustLookup(t, tab, r2.Handle), Seq: 2}),
		mk(opCancel, cancelRec{Handle: r2.Handle, CancelledAt: mustLookup(t, tab, r2.Handle).CancelledAt}),
	}
	if _, err := Replay(restored, recs); err != nil {
		t.Fatalf("Replay over snapshot: %v", err)
	}
	got, err := restored.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, got) {
		t.Fatalf("replay over snapshot changed state:\n want: %s\n  got: %s", data, got)
	}
}

func mustLookup(t *testing.T, tab *Table, handle string) Reservation {
	t.Helper()
	r, ok := tab.Lookup(handle)
	if !ok {
		t.Fatalf("handle %s missing", handle)
	}
	return r
}
