package resv

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"e2eqos/internal/units"
)

var t0 = time.Date(2001, 8, 7, 9, 0, 0, 0, time.UTC)

func win(startMin, durMin int) units.Window {
	return units.NewWindow(t0.Add(time.Duration(startMin)*time.Minute), time.Duration(durMin)*time.Minute)
}

func newTable(t *testing.T, cap units.Bandwidth) *Table {
	t.Helper()
	tab, err := NewTable("test", cap)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNewTableRejectsBadCapacity(t *testing.T) {
	if _, err := NewTable("x", 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewTable("x", -1); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestAdmitWithinCapacity(t *testing.T) {
	tab := newTable(t, 100*units.Mbps)
	r, err := tab.Admit(AdmitRequest{User: "/CN=alice", Bandwidth: 60 * units.Mbps, Window: win(0, 60)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Handle == "" || r.Status != Granted {
		t.Errorf("reservation = %+v", r)
	}
	if _, err := tab.Admit(AdmitRequest{User: "/CN=bob", Bandwidth: 40 * units.Mbps, Window: win(0, 60)}); err != nil {
		t.Errorf("fill to capacity rejected: %v", err)
	}
	if _, err := tab.Admit(AdmitRequest{User: "/CN=carol", Bandwidth: 1 * units.Mbps, Window: win(0, 60)}); err == nil {
		t.Error("overbooking accepted")
	}
}

func TestAdmitInvalidRequests(t *testing.T) {
	tab := newTable(t, 100*units.Mbps)
	if _, err := tab.Admit(AdmitRequest{Bandwidth: 0, Window: win(0, 60)}); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := tab.Admit(AdmitRequest{Bandwidth: 1, Window: units.Window{Start: t0, End: t0}}); err == nil {
		t.Error("empty window accepted")
	}
}

func TestAdvanceReservationsNonOverlapping(t *testing.T) {
	tab := newTable(t, 100*units.Mbps)
	// Two full-capacity reservations in disjoint windows must both fit.
	if _, err := tab.Admit(AdmitRequest{Bandwidth: 100 * units.Mbps, Window: win(0, 60)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Admit(AdmitRequest{Bandwidth: 100 * units.Mbps, Window: win(60, 60)}); err != nil {
		t.Errorf("adjacent window rejected: %v", err)
	}
}

func TestPeakOverlapDetection(t *testing.T) {
	tab := newTable(t, 100*units.Mbps)
	// Staircase: [0,30) 50M, [20,50) 40M -> peak 90M in [20,30).
	if _, err := tab.Admit(AdmitRequest{Bandwidth: 50 * units.Mbps, Window: win(0, 30)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Admit(AdmitRequest{Bandwidth: 40 * units.Mbps, Window: win(20, 30)}); err != nil {
		t.Fatal(err)
	}
	// 20M over the whole hour collides with the 90M peak.
	if _, err := tab.Admit(AdmitRequest{Bandwidth: 20 * units.Mbps, Window: win(0, 60)}); err == nil {
		t.Error("request exceeding peak accepted")
	}
	// 10M fits exactly.
	if _, err := tab.Admit(AdmitRequest{Bandwidth: 10 * units.Mbps, Window: win(0, 60)}); err != nil {
		t.Errorf("exact-fit request rejected: %v", err)
	}
}

func TestAvailable(t *testing.T) {
	tab := newTable(t, 100*units.Mbps)
	if got := tab.Available(win(0, 60)); got != 100*units.Mbps {
		t.Errorf("empty table available = %v", got)
	}
	if _, err := tab.Admit(AdmitRequest{Bandwidth: 30 * units.Mbps, Window: win(0, 30)}); err != nil {
		t.Fatal(err)
	}
	if got := tab.Available(win(0, 60)); got != 70*units.Mbps {
		t.Errorf("available = %v, want 70Mb/s", got)
	}
	if got := tab.Available(win(30, 30)); got != 100*units.Mbps {
		t.Errorf("disjoint window available = %v, want 100Mb/s", got)
	}
}

func TestCancelReleasesCapacity(t *testing.T) {
	tab := newTable(t, 100*units.Mbps)
	r, err := tab.Admit(AdmitRequest{Bandwidth: 100 * units.Mbps, Window: win(0, 60)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Admit(AdmitRequest{Bandwidth: 1 * units.Mbps, Window: win(0, 60)}); err == nil {
		t.Fatal("full table admitted more")
	}
	if err := tab.Cancel(r.Handle); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Admit(AdmitRequest{Bandwidth: 100 * units.Mbps, Window: win(0, 60)}); err != nil {
		t.Errorf("capacity not released: %v", err)
	}
	if err := tab.Cancel(r.Handle); err == nil {
		t.Error("double cancel accepted")
	}
	if err := tab.Cancel("nope"); err == nil {
		t.Error("cancel of unknown handle accepted")
	}
}

func TestModify(t *testing.T) {
	tab := newTable(t, 100*units.Mbps)
	r, err := tab.Admit(AdmitRequest{Bandwidth: 40 * units.Mbps, Window: win(0, 60), Tunnel: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Admit(AdmitRequest{Bandwidth: 30 * units.Mbps, Window: win(0, 60)}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Modify(r.Handle, 70*units.Mbps); err != nil {
		t.Errorf("grow within capacity rejected: %v", err)
	}
	if err := tab.Modify(r.Handle, 71*units.Mbps); err == nil {
		t.Error("grow beyond capacity accepted")
	}
	if err := tab.Modify(r.Handle, 0); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if err := tab.Modify("nope", 1); err == nil {
		t.Error("modify of unknown handle accepted")
	}
	got, ok := tab.Lookup(r.Handle)
	if !ok || got.Bandwidth != 70*units.Mbps {
		t.Errorf("lookup = %+v ok=%v", got, ok)
	}
}

func TestValidHandleCheck(t *testing.T) {
	tab := newTable(t, 100*units.Mbps)
	r, err := tab.Admit(AdmitRequest{Bandwidth: 10 * units.Mbps, Window: win(0, 60)})
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Valid(r.Handle, t0.Add(30*time.Minute)) {
		t.Error("in-window handle invalid")
	}
	if tab.Valid(r.Handle, t0.Add(61*time.Minute)) {
		t.Error("out-of-window handle valid")
	}
	if tab.Valid("nope", t0) {
		t.Error("unknown handle valid")
	}
	_ = tab.Cancel(r.Handle)
	if tab.Valid(r.Handle, t0.Add(30*time.Minute)) {
		t.Error("cancelled handle valid")
	}
}

func TestCommittedAt(t *testing.T) {
	tab := newTable(t, 100*units.Mbps)
	if _, err := tab.Admit(AdmitRequest{Bandwidth: 10 * units.Mbps, Window: win(0, 30)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Admit(AdmitRequest{Bandwidth: 20 * units.Mbps, Window: win(20, 30)}); err != nil {
		t.Fatal(err)
	}
	if got := tab.CommittedAt(t0.Add(25 * time.Minute)); got != 30*units.Mbps {
		t.Errorf("committed at 25min = %v, want 30Mb/s", got)
	}
	if got := tab.CommittedAt(t0.Add(40 * time.Minute)); got != 20*units.Mbps {
		t.Errorf("committed at 40min = %v, want 20Mb/s", got)
	}
	if got := tab.CommittedAt(t0.Add(2 * time.Hour)); got != 0 {
		t.Errorf("committed after all windows = %v, want 0", got)
	}
}

func TestAllSorted(t *testing.T) {
	tab := newTable(t, units.Gbps)
	for i := 0; i < 5; i++ {
		if _, err := tab.Admit(AdmitRequest{Bandwidth: units.Mbps, Window: win(i*10, 10)}); err != nil {
			t.Fatal(err)
		}
	}
	all := tab.All()
	if len(all) != 5 {
		t.Fatalf("len = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Handle >= all[i].Handle {
			t.Fatalf("not sorted: %v", all)
		}
	}
}

// Property: whatever sequence of admissions succeeds, the committed
// bandwidth never exceeds capacity at any sampled instant.
func TestNeverOvercommitted(t *testing.T) {
	f := func(reqs []struct {
		Start uint8
		Dur   uint8
		BW    uint16
	}) bool {
		tab, err := NewTable("p", 1000)
		if err != nil {
			return false
		}
		for _, q := range reqs {
			w := win(int(q.Start), int(q.Dur%60)+1)
			_, _ = tab.Admit(AdmitRequest{Bandwidth: units.Bandwidth(q.BW), Window: w})
		}
		for m := 0; m < 330; m += 3 {
			if tab.CommittedAt(t0.Add(time.Duration(m)*time.Minute)) > 1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAdmission(t *testing.T) {
	tab := newTable(t, 100*units.Mbps)
	// Pin the clock into the test's reservation era: enough admissions
	// cross the automatic compaction threshold, and with the real clock
	// the 2001 windows would count as long-dead and be swept mid-test.
	tab.SetClock(func() time.Time { return t0 })
	var wg sync.WaitGroup
	admitted := make(chan string, 200)
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := tab.Admit(AdmitRequest{
				User:      "/CN=u",
				Bandwidth: 1 * units.Mbps,
				Window:    win(0, 60),
			})
			if err == nil {
				admitted <- r.Handle
			}
			_ = i
		}(i)
	}
	wg.Wait()
	close(admitted)
	n := 0
	seen := make(map[string]bool)
	for h := range admitted {
		if seen[h] {
			t.Fatalf("duplicate handle %s", h)
		}
		seen[h] = true
		n++
	}
	if n != 100 {
		t.Errorf("admitted %d concurrent 1Mb/s requests into 100Mb/s, want exactly 100", n)
	}
	if got := tab.CommittedAt(t0.Add(time.Minute)); got != 100*units.Mbps {
		t.Errorf("committed = %v", got)
	}
}

func TestHandleUniqueness(t *testing.T) {
	tab := newTable(t, units.Gbps)
	seen := make(map[string]bool)
	for i := 0; i < 50; i++ {
		r, err := tab.Admit(AdmitRequest{Bandwidth: units.Mbps, Window: win(0, 10)})
		if err != nil {
			t.Fatal(err)
		}
		if seen[r.Handle] {
			t.Fatalf("duplicate handle %s", r.Handle)
		}
		seen[r.Handle] = true
	}
	_ = fmt.Sprintf("%v", seen)
}

func TestTimeline(t *testing.T) {
	tab := newTable(t, 100*units.Mbps)
	if _, err := tab.Admit(AdmitRequest{Bandwidth: 40 * units.Mbps, Window: win(0, 30)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Admit(AdmitRequest{Bandwidth: 20 * units.Mbps, Window: win(30, 30)}); err != nil {
		t.Fatal(err)
	}
	// Sample [0, 60) minutes in 6 steps: first half 40M, second 20M.
	series := tab.Timeline(win(0, 60), 6)
	if len(series) != 7 {
		t.Fatalf("len = %d", len(series))
	}
	if series[0] != 40*units.Mbps || series[2] != 40*units.Mbps {
		t.Errorf("first half = %v", series[:3])
	}
	if series[3] != 20*units.Mbps || series[5] != 20*units.Mbps {
		t.Errorf("second half = %v", series[3:6])
	}
	if series[6] != 0 { // w.End is outside both half-open windows
		t.Errorf("end sample = %v", series[6])
	}
	if tab.Timeline(win(0, 60), 0) != nil {
		t.Error("zero samples must yield nil")
	}
	if tab.Timeline(units.Window{}, 5) != nil {
		t.Error("invalid window must yield nil")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	tab := newTable(t, 100*units.Mbps)
	r1, err := tab.Admit(AdmitRequest{User: "/CN=a", Bandwidth: 40 * units.Mbps, Window: win(0, 60), Tunnel: true})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := tab.Admit(AdmitRequest{User: "/CN=b", Bandwidth: 30 * units.Mbps, Window: win(30, 60)})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Cancel(r2.Handle); err != nil {
		t.Fatal(err)
	}
	data, err := tab.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreTable(data)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := restored.Lookup(r1.Handle)
	if !ok || got.Bandwidth != 40*units.Mbps || !got.Tunnel {
		t.Errorf("restored r1 = %+v ok=%v", got, ok)
	}
	if restored.Valid(r2.Handle, t0.Add(40*time.Minute)) {
		t.Error("cancelled reservation revived by restore")
	}
	// Sequence continues: new handles must not collide.
	r3, err := restored.Admit(AdmitRequest{Bandwidth: units.Mbps, Window: win(0, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Handle == r1.Handle || r3.Handle == r2.Handle {
		t.Errorf("handle reuse after restore: %s", r3.Handle)
	}
	// Committed state preserved.
	if got := restored.CommittedAt(t0.Add(5 * time.Minute)); got != 41*units.Mbps {
		t.Errorf("committed = %v", got)
	}
}

func TestRestoreRejectsCorruptSnapshots(t *testing.T) {
	if _, err := RestoreTable([]byte("junk")); err == nil {
		t.Error("junk restored")
	}
	// Overcommitted snapshot: two 80M reservations in a 100M table.
	bad := `{"name":"x","capacity":100000000,"seq":2,"reservations":[
	 {"Handle":"x-1","Bandwidth":80000000,"Window":{"Start":"2001-08-07T09:00:00Z","End":"2001-08-07T10:00:00Z"},"Status":0},
	 {"Handle":"x-2","Bandwidth":80000000,"Window":{"Start":"2001-08-07T09:00:00Z","End":"2001-08-07T10:00:00Z"},"Status":0}]}`
	if _, err := RestoreTable([]byte(bad)); err == nil {
		t.Error("overcommitted snapshot restored")
	}
	dup := `{"name":"x","capacity":100000000,"seq":2,"reservations":[
	 {"Handle":"x-1","Bandwidth":1,"Window":{"Start":"2001-08-07T09:00:00Z","End":"2001-08-07T10:00:00Z"},"Status":0},
	 {"Handle":"x-1","Bandwidth":1,"Window":{"Start":"2001-08-07T09:00:00Z","End":"2001-08-07T10:00:00Z"},"Status":0}]}`
	if _, err := RestoreTable([]byte(dup)); err == nil {
		t.Error("duplicate-handle snapshot restored")
	}
	noWin := `{"name":"x","capacity":100,"seq":1,"reservations":[{"Handle":"x-1","Bandwidth":1,"Status":0}]}`
	if _, err := RestoreTable([]byte(noWin)); err == nil {
		t.Error("windowless reservation restored")
	}
}

// fakeClock is a settable time source for compaction tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Set(t time.Time) {
	c.mu.Lock()
	c.now = t
	c.mu.Unlock()
}

func TestCompactRemovesDeadReservations(t *testing.T) {
	tab := newTable(t, 100*units.Mbps)
	clk := &fakeClock{now: t0}
	tab.SetClock(clk.Now)

	expired, err := tab.Admit(AdmitRequest{User: "/CN=a", Bandwidth: 10 * units.Mbps, Window: win(0, 10)})
	if err != nil {
		t.Fatal(err)
	}
	cancelled, err := tab.Admit(AdmitRequest{User: "/CN=b", Bandwidth: 10 * units.Mbps, Window: win(0, 120)})
	if err != nil {
		t.Fatal(err)
	}
	live, err := tab.Admit(AdmitRequest{User: "/CN=c", Bandwidth: 10 * units.Mbps, Window: win(0, 120)})
	if err != nil {
		t.Fatal(err)
	}
	clk.Set(t0.Add(5 * time.Minute))
	if err := tab.Cancel(cancelled.Handle); err != nil {
		t.Fatal(err)
	}

	// Nothing is older than the retention horizon yet.
	if n := tab.Compact(t0.Add(6 * time.Minute)); n != 0 {
		t.Fatalf("early compact removed %d reservations", n)
	}
	// 20 minutes in: the expired window (ended at +10min) and the
	// cancellation (at +5min) are both past the 5-minute retention.
	if n := tab.Compact(t0.Add(20 * time.Minute)); n != 2 {
		t.Fatalf("compact removed %d reservations, want 2", n)
	}
	if _, ok := tab.Lookup(expired.Handle); ok {
		t.Error("expired reservation survived compaction")
	}
	if _, ok := tab.Lookup(cancelled.Handle); ok {
		t.Error("cancelled reservation survived compaction")
	}
	if _, ok := tab.Lookup(live.Handle); !ok {
		t.Error("live reservation was compacted")
	}
}

func TestCompactRetentionDisabled(t *testing.T) {
	tab := newTable(t, 100*units.Mbps)
	tab.SetRetention(0)
	if _, err := tab.Admit(AdmitRequest{User: "/CN=a", Bandwidth: 10 * units.Mbps, Window: win(0, 10)}); err != nil {
		t.Fatal(err)
	}
	if n := tab.Compact(t0.Add(24 * time.Hour)); n != 0 {
		t.Fatalf("disabled compaction removed %d reservations", n)
	}
	if tab.Len() != 1 {
		t.Errorf("Len = %d, want 1", tab.Len())
	}
}

func TestAdmitSweepsAutomatically(t *testing.T) {
	tab := newTable(t, units.Bandwidth(1_000_000)*units.Mbps)
	clk := &fakeClock{now: t0}
	tab.SetClock(clk.Now)
	// A batch of short reservations, all long dead once the clock jumps.
	for i := 0; i < 10; i++ {
		if _, err := tab.Admit(AdmitRequest{User: "/CN=a", Bandwidth: units.Mbps, Window: win(0, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	clk.Set(t0.Add(time.Hour))
	// Drive enough admissions to cross the automatic sweep threshold;
	// the new windows sit around "now", so only the first batch is dead.
	handles := make([]string, 0, sweepEvery)
	for i := 0; i < sweepEvery; i++ {
		r, err := tab.Admit(AdmitRequest{User: "/CN=b", Bandwidth: units.Mbps, Window: win(70, 1)})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, r.Handle)
	}
	for i := 1; i <= 10; i++ {
		if _, ok := tab.Lookup(fmt.Sprintf("test-%d", i)); ok {
			t.Errorf("dead reservation test-%d survived the automatic sweep", i)
		}
	}
	for _, h := range handles {
		if _, ok := tab.Lookup(h); !ok {
			t.Errorf("current reservation %s was swept", h)
		}
	}
}

func TestCancelStampsCancelledAt(t *testing.T) {
	tab := newTable(t, 100*units.Mbps)
	clk := &fakeClock{now: t0}
	tab.SetClock(clk.Now)
	r, err := tab.Admit(AdmitRequest{User: "/CN=a", Bandwidth: 10 * units.Mbps, Window: win(0, 60)})
	if err != nil {
		t.Fatal(err)
	}
	at := t0.Add(7 * time.Minute)
	clk.Set(at)
	if err := tab.Cancel(r.Handle); err != nil {
		t.Fatal(err)
	}
	got, _ := tab.Lookup(r.Handle)
	if !got.CancelledAt.Equal(at) {
		t.Errorf("CancelledAt = %v, want %v", got.CancelledAt, at)
	}
}
