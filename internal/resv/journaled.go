package resv

import (
	"fmt"
	"strings"
	"time"

	"e2eqos/internal/journal"
	"e2eqos/internal/units"
)

// Journal record vocabulary for reservation-table mutations. Every
// record is absolute — it states the resulting value, never a delta —
// so replaying a record over a snapshot that already reflects it is a
// no-op, the idempotency the journal's rotation protocol depends on.
const (
	opAdmit   = "resv.admit"
	opModify  = "resv.modify"
	opCancel  = "resv.cancel"
	opCompact = "resv.compact"
)

// event is one pending journal emission, collected under Table.mu and
// delivered after it is released.
type event struct {
	op   string
	data any
}

// admitRec journals a successful admission: the full reservation copy
// plus the sequence counter it advanced to. Carrying the whole
// reservation (not the request) makes replay exact — handle, creation
// stamp and all.
type admitRec struct {
	Resv Reservation `json:"resv"`
	Seq  int64       `json:"seq"`
}

// modifyRec journals a bandwidth change as the absolute new value.
type modifyRec struct {
	Handle    string          `json:"handle"`
	Bandwidth units.Bandwidth `json:"bandwidth"`
}

// cancelRec journals a withdrawal with its retirement stamp.
type cancelRec struct {
	Handle      string    `json:"handle"`
	CancelledAt time.Time `json:"cancelled_at"`
}

// compactRec journals the exact handle set a compaction removed.
// Handles are never reused, so removal commutes with admissions of
// other handles during replay.
type compactRec struct {
	Removed []string `json:"removed"`
}

func admitEvent(r *Reservation, seq int64) event {
	return event{opAdmit, admitRec{Resv: *r, Seq: seq}}
}

func modifyEvent(handle string, bw units.Bandwidth) event {
	return event{opModify, modifyRec{Handle: handle, Bandwidth: bw}}
}

func cancelEvent(handle string, at time.Time) event {
	return event{opCancel, cancelRec{Handle: handle, CancelledAt: at}}
}

func compactEvent(removed []string) event {
	return event{opCompact, compactRec{Removed: removed}}
}

// emitAll delivers pending events to the emit hook. Called with t.mu
// released; events is non-empty only when a hook is installed.
func (t *Table) emitAll(events []event) {
	for _, e := range events {
		t.emit(e.op, e.data)
	}
}

// setEmit installs the journal emission hook. Must be called before
// the table is shared between goroutines (broker construction time):
// the hook pointer itself is read without the table lock.
func (t *Table) setEmit(fn func(op string, data any)) {
	t.mu.Lock()
	t.emit = fn
	t.mu.Unlock()
}

// JournaledTable pairs a Table with the write-ahead journal recording
// its mutations. All Table methods are promoted unchanged; the pairing
// wires the table's emission hook to journal appends and adds the
// snapshot+truncate checkpoint.
type JournaledTable struct {
	*Table
	Journal *journal.Journal
}

// AttachJournal wires t's emission hook to j: every subsequent
// successful Admit, Modify, Cancel and Compact (including the
// automatic sweep piggybacked on Admit) appends one typed record.
// Attach before sharing t between goroutines. A nil journal detaches.
func AttachJournal(t *Table, j *journal.Journal) {
	if j == nil {
		t.setEmit(nil)
		return
	}
	t.setEmit(func(op string, data any) {
		// Durability errors are sticky in the journal (Stats.Err /
		// OnError); admission itself must not fail on a full disk.
		_ = j.Append(op, data)
	})
}

// NewJournaledTable attaches j to t (see AttachJournal) and returns
// the pairing. A nil journal yields a functioning but unjournaled
// pairing.
func NewJournaledTable(t *Table, j *journal.Journal) *JournaledTable {
	if j != nil {
		AttachJournal(t, j)
	}
	return &JournaledTable{Table: t, Journal: j}
}

// Checkpoint rotates the journal: persists a fresh table snapshot and
// truncates the record tail.
func (jt *JournaledTable) Checkpoint() error {
	return jt.Journal.Rotate(jt.Table.Snapshot)
}

// streamTombHorizon bounds how long a StreamReplayer remembers a
// compaction tombstone, in applied records. A tombstone only matters
// when the compact record overtook the admit record it removes — an
// inversion produced by a goroutine preempted between applying and
// emitting, so the two records sit within an emission window of each
// other, never thousands of records apart. The horizon keeps the
// tombstone set bounded on a long-lived follower.
const streamTombHorizon = 8192

// StreamReplayer applies journaled table records one at a time, in
// stream order, with the same tolerance for emission-order inversions
// that batch Replay gets from its tombstone pre-scan: a compact record
// that arrives before the admit record it removed leaves a tombstone
// behind, and the late admit is suppressed when it shows up. A
// replication follower drives one of these with the records streamed
// off its leader's journal. Not safe for concurrent use; the follower
// serializes stream application anyway.
type StreamReplayer struct {
	t     *Table
	seq   int64 // records applied, for tombstone aging
	tombs map[string]int64
}

// NewStreamReplayer builds a stream replayer over t.
func NewStreamReplayer(t *Table) *StreamReplayer {
	return &StreamReplayer{t: t, tombs: make(map[string]int64)}
}

// Reset forgets all stream state — called after the follower installs
// a full snapshot, which already reflects everything the tombstones
// were guarding against.
func (s *StreamReplayer) Reset() {
	s.tombs = make(map[string]int64)
}

// Apply replays one journaled record. Records outside the "resv."
// vocabulary are ignored; unknown "resv." ops are an error, exactly as
// in Replay.
func (s *StreamReplayer) Apply(rec journal.Record) error {
	if !strings.HasPrefix(rec.Op, "resv.") {
		return nil
	}
	s.seq++
	t := s.t
	switch rec.Op {
	case opAdmit:
		var a admitRec
		if err := rec.Decode(&a); err != nil {
			return err
		}
		t.mu.Lock()
		if a.Seq > t.seq {
			t.seq = a.Seq
		}
		if _, tombed := s.tombs[a.Resv.Handle]; tombed {
			// The compact that removed this handle overtook it; the
			// tombstone has done its job (handles are never reused).
			delete(s.tombs, a.Resv.Handle)
		} else if _, ok := t.resv[a.Resv.Handle]; !ok {
			r := a.Resv
			t.resv[r.Handle] = &r
		}
		t.mu.Unlock()
	case opModify:
		var m modifyRec
		if err := rec.Decode(&m); err != nil {
			return err
		}
		t.mu.Lock()
		if r, ok := t.resv[m.Handle]; ok && r.Status == Granted {
			r.Bandwidth = m.Bandwidth
		}
		t.mu.Unlock()
	case opCancel:
		var c cancelRec
		if err := rec.Decode(&c); err != nil {
			return err
		}
		t.mu.Lock()
		if r, ok := t.resv[c.Handle]; ok && r.Status == Granted {
			r.Status = Cancelled
			r.CancelledAt = c.CancelledAt
		}
		t.mu.Unlock()
	case opCompact:
		var c compactRec
		if err := rec.Decode(&c); err != nil {
			return err
		}
		t.mu.Lock()
		for _, h := range c.Removed {
			delete(t.resv, h)
			s.tombs[h] = s.seq
		}
		t.mu.Unlock()
		if len(s.tombs) > streamTombHorizon {
			for h, at := range s.tombs {
				if s.seq-at > streamTombHorizon {
					delete(s.tombs, h)
				}
			}
		}
	default:
		return fmt.Errorf("resv: replay: unknown record op %q", rec.Op)
	}
	return nil
}

// Replay applies journaled table records on top of t, which holds the
// snapshot state (or is empty when no snapshot was ever rotated). It
// returns the number of records applied. Records with ops outside the
// "resv." vocabulary are ignored so callers can feed a mixed broker
// journal straight through; unknown "resv." ops are an error (a
// version-skew tripwire, not a tolerable torn write).
//
// Replay is deliberately forgiving about interleavings that concurrent
// emission can produce: an admit whose handle a later compact record
// removes is suppressed (handles are never reused, so the tombstone is
// unambiguous), and modify/cancel records for absent handles are
// skipped rather than failed — the entry was compacted, making the
// mutation moot.
func Replay(t *Table, recs []journal.Record) (int, error) {
	// Tombstone pre-scan: emission order can place a compact record
	// before the admit record of a handle it removed (the admitter was
	// preempted between applying and emitting). Collect every removed
	// handle first so such admits are never resurrected.
	tomb := make(map[string]bool)
	for _, rec := range recs {
		if rec.Op != opCompact {
			continue
		}
		var c compactRec
		if err := rec.Decode(&c); err != nil {
			return 0, err
		}
		for _, h := range c.Removed {
			tomb[h] = true
		}
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	applied := 0
	for _, rec := range recs {
		if !strings.HasPrefix(rec.Op, "resv.") {
			continue
		}
		switch rec.Op {
		case opAdmit:
			var a admitRec
			if err := rec.Decode(&a); err != nil {
				return applied, err
			}
			if a.Seq > t.seq {
				t.seq = a.Seq
			}
			if tomb[a.Resv.Handle] {
				break // compacted later in this very tail
			}
			if _, ok := t.resv[a.Resv.Handle]; ok {
				break // snapshot already reflects it
			}
			r := a.Resv
			t.resv[r.Handle] = &r
		case opModify:
			var m modifyRec
			if err := rec.Decode(&m); err != nil {
				return applied, err
			}
			if r, ok := t.resv[m.Handle]; ok && r.Status == Granted {
				r.Bandwidth = m.Bandwidth
			}
		case opCancel:
			var c cancelRec
			if err := rec.Decode(&c); err != nil {
				return applied, err
			}
			if r, ok := t.resv[c.Handle]; ok && r.Status == Granted {
				r.Status = Cancelled
				r.CancelledAt = c.CancelledAt
			}
		case opCompact:
			var c compactRec
			if err := rec.Decode(&c); err != nil {
				return applied, err
			}
			for _, h := range c.Removed {
				delete(t.resv, h)
			}
		default:
			return applied, fmt.Errorf("resv: replay: unknown record op %q", rec.Op)
		}
		applied++
	}
	return applied, nil
}
