// Package gara reimplements the General-purpose Architecture for
// Reservation and Allocation as the paper uses it: a uniform API for
// advance reservations of networks, CPUs and disks, plus the
// end-to-end network reservation library with its two source-domain
// propagation strategies (sequential and concurrent) and the
// hop-by-hop strategy of the paper's Approach 2. The source-domain
// strategies are retained as baselines: "Our implementation of this
// API guarantees that all necessary domains are contacted, but of
// course there is nothing to stop a malicious user from modifying our
// implementation to skip a domain."
package gara

import (
	"fmt"
	"sync"

	"e2eqos/internal/core"
	"e2eqos/internal/cpusched"
	"e2eqos/internal/disksched"
	"e2eqos/internal/identity"
	"e2eqos/internal/signalling"
	"e2eqos/internal/topology"
	"e2eqos/internal/units"
)

// ResourceType names a GARA-managed resource class.
type ResourceType string

// Resource classes GARA manages uniformly.
const (
	Network ResourceType = "network"
	CPU     ResourceType = "cpu"
	Disk    ResourceType = "disk"
)

// Handle is a uniform reservation handle.
type Handle struct {
	Type ResourceType
	// Domain is the owning domain ("" for end-to-end network
	// reservations, which span several).
	Domain string
	// ID is the underlying reservation identifier (a table handle for
	// CPU/disk, the RAR id for network reservations).
	ID string
}

func (h Handle) String() string {
	return fmt.Sprintf("%s:%s:%s", h.Type, h.Domain, h.ID)
}

// Requester abstracts a principal that can issue network reservation
// requests; the experiment harness's User satisfies it.
type Requester interface {
	// DN is the requesting identity.
	DN() identity.DN
	// ReserveE2E propagates a request hop-by-hop from the source
	// domain's broker.
	ReserveE2E(spec *core.Spec) (*signalling.ResultPayload, error)
	// ReserveLocalAt reserves in one domain only.
	ReserveLocalAt(domain string, spec *core.Spec) (*signalling.ResultPayload, error)
	// Cancel withdraws the RAR at the given domain.
	Cancel(domain, rarID string) error
}

// Strategy selects how the end-to-end network API propagates a
// reservation across the path's domains.
type Strategy int

// End-to-end propagation strategies.
const (
	// Sequential contacts each broker on the path in order from the
	// source domain (GARA's default end-to-end API behaviour).
	Sequential Strategy = iota
	// Concurrent contacts all brokers in parallel ("or if optimized,
	// concurrently"); the paper notes this can beat hop-by-hop on
	// latency because the per-domain reservations overlap.
	Concurrent
	// HopByHop delegates propagation to the brokers themselves
	// (the paper's Approach 2).
	HopByHop
)

func (s Strategy) String() string {
	switch s {
	case Sequential:
		return "source-domain-sequential"
	case Concurrent:
		return "source-domain-concurrent"
	case HopByHop:
		return "hop-by-hop"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// NetworkAPI is GARA's end-to-end network reservation library.
type NetworkAPI struct {
	Topo *topology.Topology
}

// NewNetworkAPI creates the library over a topology.
func NewNetworkAPI(topo *topology.Topology) *NetworkAPI {
	return &NetworkAPI{Topo: topo}
}

// pathDomains resolves the domains a spec's flow traverses.
func (api *NetworkAPI) pathDomains(spec *core.Spec) ([]string, error) {
	return api.Topo.Path(spec.SourceDomain, spec.DestDomain)
}

// Reserve performs an end-to-end network reservation with the chosen
// strategy. The returned result is the grant (hop-by-hop: the
// aggregated result; source-domain: a synthesised result whose
// approvals collect the per-domain grants). On any per-domain failure
// the already-acquired domains are rolled back.
func (api *NetworkAPI) Reserve(req Requester, spec *core.Spec, strategy Strategy) (*signalling.ResultPayload, error) {
	switch strategy {
	case HopByHop:
		return req.ReserveE2E(spec)
	case Sequential:
		return api.reserveSequential(req, spec)
	case Concurrent:
		return api.reserveConcurrent(req, spec)
	default:
		return nil, fmt.Errorf("gara: unknown strategy %v", strategy)
	}
}

func (api *NetworkAPI) reserveSequential(req Requester, spec *core.Spec) (*signalling.ResultPayload, error) {
	domains, err := api.pathDomains(spec)
	if err != nil {
		return nil, err
	}
	out := &signalling.ResultPayload{Granted: true}
	var acquired []string
	for _, dom := range domains {
		res, err := req.ReserveLocalAt(dom, spec)
		if err != nil || !res.Granted {
			api.rollback(req, spec.RARID, acquired)
			reason := fmt.Sprintf("transport error: %v", err)
			if err == nil {
				reason = res.Reason
			}
			return &signalling.ResultPayload{Granted: false, Reason: fmt.Sprintf("%s: %s", dom, reason)}, nil
		}
		acquired = append(acquired, dom)
		out.Approvals = append(out.Approvals, res.Approvals...)
	}
	return out, nil
}

func (api *NetworkAPI) reserveConcurrent(req Requester, spec *core.Spec) (*signalling.ResultPayload, error) {
	domains, err := api.pathDomains(spec)
	if err != nil {
		return nil, err
	}
	type outcome struct {
		dom string
		res *signalling.ResultPayload
		err error
	}
	results := make([]outcome, len(domains))
	var wg sync.WaitGroup
	for i, dom := range domains {
		wg.Add(1)
		go func(i int, dom string) {
			defer wg.Done()
			res, err := req.ReserveLocalAt(dom, spec)
			results[i] = outcome{dom: dom, res: res, err: err}
		}(i, dom)
	}
	wg.Wait()
	out := &signalling.ResultPayload{Granted: true}
	var acquired []string
	var failure string
	for _, r := range results {
		switch {
		case r.err != nil:
			failure = fmt.Sprintf("%s: %v", r.dom, r.err)
		case !r.res.Granted:
			failure = fmt.Sprintf("%s: %s", r.dom, r.res.Reason)
		default:
			acquired = append(acquired, r.dom)
			out.Approvals = append(out.Approvals, r.res.Approvals...)
		}
	}
	if failure != "" {
		api.rollback(req, spec.RARID, acquired)
		return &signalling.ResultPayload{Granted: false, Reason: failure}, nil
	}
	return out, nil
}

func (api *NetworkAPI) rollback(req Requester, rarID string, acquired []string) {
	for _, dom := range acquired {
		_ = req.Cancel(dom, rarID)
	}
}

// Cancel withdraws an end-to-end reservation made with the given
// strategy.
func (api *NetworkAPI) Cancel(req Requester, spec *core.Spec, strategy Strategy) error {
	switch strategy {
	case HopByHop:
		return req.Cancel(spec.SourceDomain, spec.RARID)
	default:
		domains, err := api.pathDomains(spec)
		if err != nil {
			return err
		}
		var firstErr error
		for _, dom := range domains {
			if err := req.Cancel(dom, spec.RARID); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
}

// Coordinator is the STARS-style reservation coordinator baseline: a
// separate source-domain entity trusted by all brokers that performs
// the end-to-end reservation on the user's behalf. It removes the
// need for every broker to know every user, but still "require[s] a
// direct trust relationship between all intermediate and possible
// end-domains" and the coordinator.
type Coordinator struct {
	api *NetworkAPI
	// Agent is the coordinator's own requester identity (trusted by
	// all domains).
	Agent Requester
}

// NewCoordinator builds an RC over the network API.
func NewCoordinator(api *NetworkAPI, agent Requester) *Coordinator {
	return &Coordinator{api: api, Agent: agent}
}

// ReserveFor performs the end-to-end reservation for the user's spec,
// re-issued under the coordinator's identity (the RC is what the
// domains authenticate).
func (c *Coordinator) ReserveFor(userSpec *core.Spec, strategy Strategy) (*core.Spec, *signalling.ResultPayload, error) {
	if strategy == HopByHop {
		return nil, nil, fmt.Errorf("gara: the coordinator baseline uses source-domain strategies")
	}
	spec := *userSpec
	spec.RARID = core.NewRARID()
	spec.User = c.Agent.DN()
	res, err := c.api.Reserve(c.Agent, &spec, strategy)
	if err != nil {
		return nil, nil, err
	}
	return &spec, res, nil
}

// Coreservation ------------------------------------------------------------

// CoRequest describes an all-or-nothing multi-resource reservation:
// the network flow plus CPU and/or disk at the destination (Figure 5:
// "the use of the GARA API to couple a multi-domain network
// reservation with a CPU reservation in domain C").
type CoRequest struct {
	Spec *core.Spec
	// CPUs requests that many processors at the destination.
	CPUs int
	// DiskRate requests disk bandwidth at the destination.
	DiskRate units.Bandwidth
}

// CoReserver holds the destination-side resource managers.
type CoReserver struct {
	API  *NetworkAPI
	CPU  *cpusched.Manager
	Disk *disksched.Manager
}

// Reserve acquires CPU and disk first (cheap, local), links their
// handles into the network spec, then performs the network
// reservation; any failure rolls everything back.
func (c *CoReserver) Reserve(req Requester, co CoRequest, strategy Strategy) ([]Handle, *signalling.ResultPayload, error) {
	if co.Spec == nil {
		return nil, nil, fmt.Errorf("gara: co-reservation without network spec")
	}
	var handles []Handle
	rollback := func() {
		for _, h := range handles {
			switch h.Type {
			case CPU:
				if c.CPU != nil {
					_ = c.CPU.Cancel(h.ID)
				}
			case Disk:
				if c.Disk != nil {
					_ = c.Disk.Cancel(h.ID)
				}
			}
		}
	}
	if co.Spec.LinkedHandles == nil {
		co.Spec.LinkedHandles = make(map[string]string)
	}
	if co.CPUs > 0 {
		if c.CPU == nil {
			return nil, nil, fmt.Errorf("gara: no CPU manager at destination")
		}
		h, err := c.CPU.Reserve(req.DN(), co.CPUs, co.Spec.Window)
		if err != nil {
			return nil, nil, fmt.Errorf("gara: CPU co-reservation: %w", err)
		}
		handles = append(handles, Handle{Type: CPU, Domain: c.CPU.Domain(), ID: h})
		co.Spec.LinkedHandles["cpu"] = h
	}
	if co.DiskRate > 0 {
		if c.Disk == nil {
			rollback()
			return nil, nil, fmt.Errorf("gara: no disk manager at destination")
		}
		h, err := c.Disk.Reserve(req.DN(), co.DiskRate, co.Spec.Window)
		if err != nil {
			rollback()
			return nil, nil, fmt.Errorf("gara: disk co-reservation: %w", err)
		}
		handles = append(handles, Handle{Type: Disk, Domain: c.Disk.Domain(), ID: h})
		co.Spec.LinkedHandles["disk"] = h
	}
	res, err := c.API.Reserve(req, co.Spec, strategy)
	if err != nil || !res.Granted {
		rollback()
		if err != nil {
			return nil, nil, err
		}
		return nil, res, nil
	}
	handles = append(handles, Handle{Type: Network, ID: co.Spec.RARID})
	return handles, res, nil
}
