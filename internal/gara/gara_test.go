package gara_test

import (
	"testing"
	"time"

	"e2eqos/internal/experiment"
	"e2eqos/internal/gara"
	"e2eqos/internal/units"
)

func buildWorld(t *testing.T, domains int, universalTrust bool) *experiment.World {
	t.Helper()
	w, err := experiment.BuildWorld(experiment.WorldConfig{
		NumDomains:            domains,
		Capacity:              100 * units.Mbps,
		TrustUserCAEverywhere: universalTrust,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

func newUser(t *testing.T, w *experiment.World, name string) *experiment.User {
	t.Helper()
	u, err := w.NewUser(name, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)
	return u
}

func TestStrategiesGrantAndCommit(t *testing.T) {
	for _, strat := range []gara.Strategy{gara.Sequential, gara.Concurrent, gara.HopByHop} {
		t.Run(strat.String(), func(t *testing.T) {
			w := buildWorld(t, 4, true)
			u := newUser(t, w, "alice")
			api := gara.NewNetworkAPI(w.Topo)
			spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 10 * units.Mbps})
			res, err := api.Reserve(u, spec, strat)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Granted {
				t.Fatalf("denied: %s", res.Reason)
			}
			at := spec.Window.Start.Add(time.Minute)
			for _, dom := range w.Domains {
				if got := w.BBs[dom].Table().CommittedAt(at); got != 10*units.Mbps {
					t.Errorf("%s committed = %v", dom, got)
				}
			}
			if err := api.Cancel(u, spec, strat); err != nil {
				t.Fatalf("cancel: %v", err)
			}
			for _, dom := range w.Domains {
				if got := w.BBs[dom].Table().CommittedAt(at); got != 0 {
					t.Errorf("%s committed after cancel = %v", dom, got)
				}
			}
		})
	}
}

func TestSourceDomainRollbackOnFailure(t *testing.T) {
	// Fill the last domain so it denies; sequential and concurrent
	// must roll the earlier domains back.
	for _, strat := range []gara.Strategy{gara.Sequential, gara.Concurrent} {
		t.Run(strat.String(), func(t *testing.T) {
			w := buildWorld(t, 3, true)
			u := newUser(t, w, "alice")
			api := gara.NewNetworkAPI(w.Topo)
			// Exhaust the destination domain.
			filler := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 100 * units.Mbps})
			if res, err := u.ReserveLocalAt(w.DestDomain(), filler); err != nil || !res.Granted {
				t.Fatalf("filler failed: %v %+v", err, res)
			}
			spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 10 * units.Mbps})
			spec.Window = filler.Window
			res, err := api.Reserve(u, spec, strat)
			if err != nil {
				t.Fatal(err)
			}
			if res.Granted {
				t.Fatal("grant despite exhausted destination")
			}
			at := spec.Window.Start.Add(time.Minute)
			for _, dom := range w.Domains[:len(w.Domains)-1] {
				if got := w.BBs[dom].Table().CommittedAt(at); got != 0 {
					t.Errorf("%s not rolled back: %v", dom, got)
				}
			}
		})
	}
}

func TestMisreservationPossibleWithSourceDomainSignalling(t *testing.T) {
	// The Figure 4 attack: David "modifies the implementation to skip
	// a domain": he reserves locally in all domains EXCEPT the
	// destination. Source-domain signalling cannot prevent this.
	w := buildWorld(t, 3, true)
	david := newUser(t, w, "david")
	spec := david.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 50 * units.Mbps})
	for _, dom := range w.Domains[:len(w.Domains)-1] {
		res, err := david.ReserveLocalAt(dom, spec)
		if err != nil || !res.Granted {
			t.Fatalf("local reservation at %s failed: %v %+v", dom, err, res)
		}
	}
	at := spec.Window.Start.Add(time.Minute)
	if got := w.BBs[w.Domains[1]].Table().CommittedAt(at); got != 50*units.Mbps {
		t.Errorf("intermediate commitment = %v, want 50Mb/s (the attack state)", got)
	}
	if got := w.BBs[w.DestDomain()].Table().CommittedAt(at); got != 0 {
		t.Errorf("destination commitment = %v, want 0 (skipped)", got)
	}
}

func TestCoordinatorBaseline(t *testing.T) {
	// Only the RC's CA needs universal trust; end users stay unknown
	// to remote domains. We model this with the RC as a trusted user.
	w := buildWorld(t, 3, true)
	rc := newUser(t, w, "reservation-coordinator")
	endUser := newUser(t, w, "alice")
	api := gara.NewNetworkAPI(w.Topo)
	coord := gara.NewCoordinator(api, rc)

	spec := endUser.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: 10 * units.Mbps})
	rcSpec, res, err := coord.ReserveFor(spec, gara.Concurrent)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Granted {
		t.Fatalf("RC reservation denied: %s", res.Reason)
	}
	if rcSpec.User != rc.DN() {
		t.Errorf("RC spec user = %s", rcSpec.User)
	}
	if _, _, err := coord.ReserveFor(spec, gara.HopByHop); err == nil {
		t.Error("coordinator accepted hop-by-hop strategy")
	}
}

func TestCoReservationNetworkPlusCPU(t *testing.T) {
	w, err := experiment.BuildWorld(experiment.WorldConfig{
		NumDomains: 3,
		Capacity:   100 * units.Mbps,
		CPUs:       map[string]int{"Domain2": 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	u := newUser(t, w, "alice")
	api := gara.NewNetworkAPI(w.Topo)
	co := &gara.CoReserver{API: api, CPU: w.CPU["Domain2"]}

	spec := u.NewSpec(experiment.SpecOptions{DestDomain: "Domain2", Bandwidth: 10 * units.Mbps})
	handles, res, err := co.Reserve(u, gara.CoRequest{Spec: spec, CPUs: 4}, gara.HopByHop)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Granted {
		t.Fatalf("co-reservation denied: %s", res.Reason)
	}
	if len(handles) != 2 {
		t.Fatalf("handles = %v", handles)
	}
	if handles[0].Type != gara.CPU || handles[1].Type != gara.Network {
		t.Errorf("handle types = %v", handles)
	}
	if spec.LinkedHandles["cpu"] == "" {
		t.Error("CPU handle not linked into the network spec")
	}
	if w.CPU["Domain2"].Available(spec.Window) != 4 {
		t.Errorf("CPU pool = %d free, want 4", w.CPU["Domain2"].Available(spec.Window))
	}
}

func TestCoReservationRollsBackCPUOnNetworkFailure(t *testing.T) {
	w, err := experiment.BuildWorld(experiment.WorldConfig{
		NumDomains: 3,
		Capacity:   20 * units.Mbps,
		CPUs:       map[string]int{"Domain2": 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	u := newUser(t, w, "alice")
	api := gara.NewNetworkAPI(w.Topo)
	co := &gara.CoReserver{API: api, CPU: w.CPU["Domain2"]}

	spec := u.NewSpec(experiment.SpecOptions{DestDomain: "Domain2", Bandwidth: 50 * units.Mbps}) // beyond capacity
	_, res, err := co.Reserve(u, gara.CoRequest{Spec: spec, CPUs: 4}, gara.HopByHop)
	if err != nil {
		t.Fatal(err)
	}
	if res.Granted {
		t.Fatal("over-capacity network reservation granted")
	}
	if got := w.CPU["Domain2"].Available(spec.Window); got != 8 {
		t.Errorf("CPU pool = %d free after rollback, want 8", got)
	}
}

func TestCoReservationMissingManager(t *testing.T) {
	w := buildWorld(t, 2, false)
	u := newUser(t, w, "alice")
	api := gara.NewNetworkAPI(w.Topo)
	co := &gara.CoReserver{API: api} // no CPU manager
	spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: units.Mbps})
	if _, _, err := co.Reserve(u, gara.CoRequest{Spec: spec, CPUs: 2}, gara.HopByHop); err == nil {
		t.Fatal("co-reservation without CPU manager succeeded")
	}
}

func TestHandleString(t *testing.T) {
	h := gara.Handle{Type: gara.Network, Domain: "", ID: "RAR-1"}
	if h.String() != "network::RAR-1" {
		t.Errorf("String = %q", h.String())
	}
}
