package disksched

import (
	"testing"
	"time"

	"e2eqos/internal/identity"
	"e2eqos/internal/units"
)

var (
	t0   = time.Date(2001, 8, 7, 9, 0, 0, 0, time.UTC)
	user = identity.NewDN("Grid", "DomainC", "Charlie")
)

func win(startMin, durMin int) units.Window {
	return units.NewWindow(t0.Add(time.Duration(startMin)*time.Minute), time.Duration(durMin)*time.Minute)
}

func TestReserveCancelCycle(t *testing.T) {
	m, err := NewManager("C", 400*units.Mbps)
	if err != nil {
		t.Fatal(err)
	}
	if m.Capacity() != 400*units.Mbps || m.Domain() != "C" {
		t.Errorf("capacity=%v domain=%s", m.Capacity(), m.Domain())
	}
	h, err := m.Reserve(user, 300*units.Mbps, win(0, 30))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Valid(h, t0.Add(10*time.Minute)) {
		t.Error("active reservation invalid")
	}
	if _, err := m.Reserve(user, 200*units.Mbps, win(0, 30)); err == nil {
		t.Error("overbooked disk")
	}
	if got := m.Available(win(0, 30)); got != 100*units.Mbps {
		t.Errorf("available = %v", got)
	}
	if err := m.Cancel(h); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Reserve(user, 400*units.Mbps, win(0, 30)); err != nil {
		t.Errorf("capacity not freed: %v", err)
	}
}

func TestNewManagerRejectsBadRate(t *testing.T) {
	if _, err := NewManager("C", 0); err == nil {
		t.Fatal("zero rate accepted")
	}
}
