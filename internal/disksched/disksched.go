// Package disksched is the disk-bandwidth resource manager substrate:
// GARA "provides advance reservations and end-to-end management for
// quality of service on different types of resources, including
// networks, CPUs, and disks". It admits advance reservations of
// storage throughput against a device's aggregate rate.
package disksched

import (
	"fmt"
	"time"

	"e2eqos/internal/identity"
	"e2eqos/internal/resv"
	"e2eqos/internal/units"
)

// Manager reserves disk bandwidth on one storage system.
type Manager struct {
	domain string
	table  *resv.Table
}

// NewManager creates a manager for a device sustaining rate.
func NewManager(domain string, rate units.Bandwidth) (*Manager, error) {
	table, err := resv.NewTable("disk-"+domain, rate)
	if err != nil {
		return nil, fmt.Errorf("disksched: %w", err)
	}
	return &Manager{domain: domain, table: table}, nil
}

// Domain returns the owning domain.
func (m *Manager) Domain() string { return m.domain }

// Capacity returns the device throughput.
func (m *Manager) Capacity() units.Bandwidth { return m.table.Capacity() }

// Reserve admits an advance reservation of rate during w.
func (m *Manager) Reserve(user identity.DN, rate units.Bandwidth, w units.Window) (string, error) {
	r, err := m.table.Admit(resv.AdmitRequest{User: user, Bandwidth: rate, Window: w})
	if err != nil {
		return "", fmt.Errorf("disksched: %w", err)
	}
	return r.Handle, nil
}

// Cancel withdraws a reservation.
func (m *Manager) Cancel(handle string) error { return m.table.Cancel(handle) }

// Valid reports whether handle is granted and active at the instant.
func (m *Manager) Valid(handle string, at time.Time) bool { return m.table.Valid(handle, at) }

// Available returns the free throughput during w.
func (m *Manager) Available(w units.Window) units.Bandwidth { return m.table.Available(w) }
