// Package cas implements a Community Authorization Server in the style
// the paper adopts from the Globus project: at "grid-login" a user
// receives a capability certificate carrying the community's
// capabilities in an X.509v3 extension, bound to a freshly generated
// proxy key pair whose private half the user keeps. The certificate
// plus proxy key seed the cascaded delegation chain of §6.5.
package cas

import (
	"fmt"
	"sync"
	"time"

	"e2eqos/internal/identity"
	"e2eqos/internal/pki"
)

// Credential is what a user walks away from grid-login with.
type Credential struct {
	// Certificate is the CAS-issued capability certificate (subject:
	// the user; subject key: the public proxy key).
	Certificate *pki.CapabilityCertificate
	// Proxy is the proxy key pair; its private half proves possession
	// and signs the first delegation.
	Proxy *pki.ProxyKey
}

// Server is a community authorization server. It is safe for
// concurrent use.
type Server struct {
	key       *identity.KeyPair
	community string
	validity  time.Duration

	mu     sync.RWMutex
	grants map[identity.DN][]string
}

// NewServer creates a CAS for the named community (e.g. "ESnet"),
// issuing certificates valid for validity (default 12 hours).
func NewServer(key *identity.KeyPair, community string, validity time.Duration) *Server {
	if validity <= 0 {
		validity = 12 * time.Hour
	}
	return &Server{
		key:       key,
		community: community,
		validity:  validity,
		grants:    make(map[identity.DN][]string),
	}
}

// DN returns the CAS identity.
func (s *Server) DN() identity.DN { return s.key.DN }

// Key returns the CAS key pair; verifiers pin its public half.
func (s *Server) Key() *identity.KeyPair { return s.key }

// Community returns the community name.
func (s *Server) Community() string { return s.community }

// Grant records that user holds the given capabilities in this
// community.
func (s *Server) Grant(user identity.DN, capabilities ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range capabilities {
		dup := false
		for _, have := range s.grants[user] {
			if have == c {
				dup = true
				break
			}
		}
		if !dup {
			s.grants[user] = append(s.grants[user], c)
		}
	}
}

// Revoke removes all grants for user.
func (s *Server) Revoke(user identity.DN) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.grants, user)
}

// Capabilities lists user's current grants.
func (s *Server) Capabilities(user identity.DN) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.grants[user]...)
}

// Login performs grid-login for user: it mints a proxy key pair and a
// capability certificate over it. Users without grants are refused.
func (s *Server) Login(user identity.DN) (*Credential, error) {
	caps := s.Capabilities(user)
	if len(caps) == 0 {
		return nil, fmt.Errorf("cas: %s holds no capabilities in community %q", user, s.community)
	}
	proxy, err := pki.NewProxyKey()
	if err != nil {
		return nil, err
	}
	attrs := pki.CapabilityAttrs{Community: s.community, Capabilities: caps}
	cert, err := pki.IssueCommunityCapability(s.key.DN, s.key, user, proxy, attrs, s.validity)
	if err != nil {
		return nil, fmt.Errorf("cas: issuing capability for %s: %w", user, err)
	}
	return &Credential{Certificate: cert, Proxy: proxy}, nil
}
