package cas

import (
	"testing"
	"time"

	"e2eqos/internal/identity"
	"e2eqos/internal/pki"
)

func newCAS(t *testing.T) *Server {
	t.Helper()
	key, err := identity.GenerateKeyPair(identity.NewDN("ESnet", "", "CAS"))
	if err != nil {
		t.Fatal(err)
	}
	return NewServer(key, "ESnet", time.Hour)
}

var alice = identity.NewDN("Grid", "DomainA", "Alice")

func TestGrantAndCapabilities(t *testing.T) {
	s := newCAS(t)
	s.Grant(alice, "network-reservation")
	s.Grant(alice, "network-reservation", "premium") // duplicate ignored
	caps := s.Capabilities(alice)
	if len(caps) != 2 {
		t.Fatalf("capabilities = %v", caps)
	}
	s.Revoke(alice)
	if len(s.Capabilities(alice)) != 0 {
		t.Fatal("revoke did not clear grants")
	}
}

func TestLoginIssuesVerifiableCredential(t *testing.T) {
	s := newCAS(t)
	s.Grant(alice, "network-reservation")
	cred, err := s.Login(alice)
	if err != nil {
		t.Fatal(err)
	}
	if cred.Certificate.SubjectDN() != alice {
		t.Errorf("subject = %s", cred.Certificate.SubjectDN())
	}
	if cred.Certificate.Attrs.Community != "ESnet" {
		t.Errorf("community = %s", cred.Certificate.Attrs.Community)
	}
	// The certificate binds the proxy public key.
	if !cred.Certificate.PublicKey().Equal(cred.Proxy.Public()) {
		t.Error("certificate does not carry the proxy key")
	}
	// And anchors a verifiable chain.
	chain := pki.CapabilityChain{cred.Certificate}
	attrs, err := chain.Verify(pki.VerifyOptions{CASKey: s.Key().Public()})
	if err != nil {
		t.Fatalf("chain verify: %v", err)
	}
	if !attrs.HasCapability("network-reservation") {
		t.Error("capability missing from verified attrs")
	}
	// Possession proof with the proxy key.
	nonce := []byte("n")
	proof, err := pki.ProvePossession(cred.Proxy.Private, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := chain.VerifyPossession(nonce, proof); err != nil {
		t.Errorf("possession rejected: %v", err)
	}
}

func TestLoginWithoutGrants(t *testing.T) {
	s := newCAS(t)
	if _, err := s.Login(alice); err == nil {
		t.Fatal("login without grants succeeded")
	}
}

func TestLoginsUseFreshProxyKeys(t *testing.T) {
	s := newCAS(t)
	s.Grant(alice, "x")
	c1, err := s.Login(alice)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.Login(alice)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Proxy.Public().Equal(c2.Proxy.Public()) {
		t.Fatal("proxy keys reused across logins")
	}
}
