// Baselines: measure the paper's Approach 1 (source-domain-based
// signalling, sequential and concurrent) against Approach 2
// (hop-by-hop) on the same testbed, reproducing the §3 discussion.
//
//	go run ./examples/baselines
package main

import (
	"fmt"
	"log"
	"time"

	"e2eqos/internal/experiment"
	"e2eqos/internal/gara"
)

func main() {
	const hopLatency = 5 * time.Millisecond
	fmt.Printf("one reservation across N domains at %v one-way hop latency\n\n", hopLatency)
	fmt.Printf("%-8s  %-22s  %-22s  %-22s\n", "domains", "sequential (A1)", "concurrent (A1)", "hop-by-hop (A2)")
	for _, n := range []int{2, 4, 6, 8} {
		row := fmt.Sprintf("%-8d", n)
		for _, strat := range []gara.Strategy{gara.Sequential, gara.Concurrent, gara.HopByHop} {
			s, err := experiment.MeasureSignalling(n, hopLatency, strat, 3)
			if err != nil {
				log.Fatalf("n=%d %v: %v", n, strat, err)
			}
			row += fmt.Sprintf("  %-22s", fmt.Sprintf("%5.1fms / %2d msgs", float64(s.Latency.Microseconds())/1000, s.Messages))
		}
		fmt.Println(row)
	}
	fmt.Println(`
Approach 1 (concurrent) stays flat: all per-domain reservations overlap.
Approach 2 grows linearly: one verify+extend+RTT per hop.
The price of Approach 1 is what the rest of the paper is about:
  - every broker must authenticate every user (trust scaling), and
  - nothing stops a client from skipping a domain (the Figure 4
    misreservation attack; see examples/misreservation).`)
}
