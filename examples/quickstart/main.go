// Quickstart: build a three-domain testbed in-process, make an
// end-to-end hop-by-hop network reservation as Alice, inspect the
// signed per-domain approvals, and cancel.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"e2eqos/internal/experiment"
	"e2eqos/internal/units"
)

func main() {
	// One call builds: a CA, broker, policy server and reservation
	// table per domain, SLAs on each peering, and an in-memory
	// signalling network with 2ms one-way latency.
	world, err := experiment.BuildWorld(experiment.WorldConfig{
		NumDomains: 3,
		Labels:     []string{"DomainA", "DomainB", "DomainC"},
		Capacity:   100 * units.Mbps,
		Latency:    2 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	// Alice lives in DomainA. Only her home domain can authenticate
	// her — the hop-by-hop protocol carries her identity downstream.
	alice, err := world.NewUser("Alice", "DomainA", nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer alice.Close()

	spec := alice.NewSpec(experiment.SpecOptions{
		DestDomain: "DomainC",
		Bandwidth:  10 * units.Mbps,
	})
	fmt.Printf("requesting %v from %s to %s (%s)\n",
		spec.Bandwidth, spec.SourceDomain, spec.DestDomain, spec.RARID)

	res, err := alice.ReserveE2E(spec)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Granted {
		log.Fatalf("denied: %s", res.Reason)
	}
	fmt.Println("GRANTED — signed approvals along the return path:")
	for _, a := range res.Approvals {
		fmt.Printf("  %-8s bb=%s handle=%s\n", a.Domain, a.BBDN, a.Handle)
	}
	if err := world.VerifyApprovals(res); err != nil {
		log.Fatalf("approval signature check: %v", err)
	}
	fmt.Println("all approval signatures verified")

	for _, dom := range world.Domains {
		committed := world.BBs[dom].Table().CommittedAt(spec.Window.Start.Add(time.Minute))
		fmt.Printf("  %s committed: %v\n", dom, committed)
	}

	if err := alice.Cancel("DomainA", spec.RARID); err != nil {
		log.Fatal(err)
	}
	fmt.Println("cancelled; capacity released in every domain")
}
