// Tunnel: establish an aggregate end-to-end reservation once, then
// allocate per-flow bandwidth by talking to only the two end domains.
//
//	go run ./examples/tunnel
//
// This is the paper's answer to "if a set of applications creates many
// parallel flows between the same two end-domains, it is infeasible to
// negotiate an end-to-end reservation for each one".
package main

import (
	"fmt"
	"log"
	"time"

	"e2eqos/internal/experiment"
	"e2eqos/internal/units"
)

func main() {
	world, err := experiment.BuildWorld(experiment.WorldConfig{
		NumDomains: 5, // three intermediate domains that tunnels bypass
		Capacity:   units.Gbps,
		Latency:    2 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	alice, err := world.NewUser("Alice", "", nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer alice.Close()

	// Establish a 100 Mb/s tunnel through all five domains.
	spec := alice.NewSpec(experiment.SpecOptions{
		DestDomain: world.DestDomain(),
		Bandwidth:  100 * units.Mbps,
		Tunnel:     true,
	})
	msgsBefore := world.Net.Messages()
	res, err := alice.ReserveE2E(spec)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Granted {
		log.Fatalf("tunnel denied: %s", res.Reason)
	}
	setupMsgs := world.Net.Messages() - msgsBefore
	fmt.Printf("tunnel %s established through %d domains (%d messages)\n",
		spec.RARID, len(world.Domains), setupMsgs)

	// Sub-flows touch only the two end domains.
	src := world.BBs[world.SourceDomain()]
	for i := 0; i < 8; i++ {
		before := world.Net.Messages()
		start := time.Now()
		sub := fmt.Sprintf("flow-%d", i)
		if err := src.AllocateTunnelFlow(spec.RARID, sub, 10*units.Mbps, alice.DN()); err != nil {
			log.Fatalf("sub-flow %d: %v", i, err)
		}
		fmt.Printf("  %s: 10Mb/s allocated in %v using %d messages (intermediates untouched)\n",
			sub, time.Since(start).Round(time.Millisecond), world.Net.Messages()-before)
	}

	ep, _ := src.Tunnel(spec.RARID)
	fmt.Printf("tunnel usage: %v of %v (%d sub-flows)\n", ep.Used(), ep.Aggregate, len(ep.SubFlows()))

	// The ninth 30 Mb/s flow exceeds the aggregate: refused locally,
	// without bothering any other domain.
	if err := src.AllocateTunnelFlow(spec.RARID, "too-big", 30*units.Mbps, alice.DN()); err != nil {
		fmt.Printf("over-aggregate allocation correctly refused: %v\n", err)
	}
}
