// Misreservation: reproduce the paper's Figure 4 attack on the
// packet-level DiffServ simulator, then show how hop-by-hop signalling
// prevents it.
//
//	go run ./examples/misreservation
//
// Alice holds a valid 10 Mb/s end-to-end reservation A -> B -> C.
// David (domain D) reserves in D and B but deliberately skips C. The
// destination polices the premium *aggregate* — it cannot tell the two
// flows apart — so Alice's guaranteed traffic is dropped alongside
// David's. Under hop-by-hop signalling David's request is denied at C
// and rolled back everywhere, so his traffic rides best effort and
// Alice's guarantee holds.
package main

import (
	"fmt"
	"log"
	"time"

	"e2eqos/internal/experiment"
)

func main() {
	results, table, err := experiment.RunFigure4(2 * time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(table.Render())

	attack, protected := results[0], results[1]
	fmt.Printf("\nAlice reserved 10 Mb/s in both runs.\n")
	fmt.Printf("Under the attack she measured  %.2f Mb/s.\n", attack.AliceGoodput/1e6)
	fmt.Printf("Under hop-by-hop she measured  %.2f Mb/s.\n", protected.AliceGoodput/1e6)
	if attack.AliceGoodput < protected.AliceGoodput {
		fmt.Println("=> an incomplete upstream reservation broke an honest user's guarantee;")
		fmt.Println("   hop-by-hop signalling makes that state unconstructable.")
	}
}
