// Co-reservation: Figure 5/6 of the paper — couple a multi-domain
// network reservation with a CPU reservation in the destination
// domain through the uniform GARA API, with all-or-nothing semantics
// and a destination policy that *requires* the CPU link.
//
//	go run ./examples/coreservation
package main

import (
	"fmt"
	"log"
	"time"

	"e2eqos/internal/experiment"
	"e2eqos/internal/gara"
	"e2eqos/internal/policy"
	"e2eqos/internal/units"
)

func main() {
	world, err := experiment.BuildWorld(experiment.WorldConfig{
		NumDomains: 3,
		Labels:     []string{"DomainA", "DomainB", "DomainC"},
		Capacity:   100 * units.Mbps,
		Policies: map[string]*policy.Policy{
			// Figure 6's destination policy: >= 5 Mb/s needs an ESnet
			// capability AND a valid CPU reservation.
			"DomainC": policy.Figure6PolicyC,
		},
		CPUs: map[string]int{"DomainC": 16},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	// Alice grid-logs-in at the ESnet CAS and receives a capability
	// certificate over a fresh proxy key.
	alice, err := world.NewUser("Alice", "DomainA", []string{"network-reservation"}, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer alice.Close()

	api := gara.NewNetworkAPI(world.Topo)
	co := &gara.CoReserver{API: api, CPU: world.CPU["DomainC"]}

	// Without the CPU co-reservation DomainC denies the 10 Mb/s flow.
	bare := alice.NewSpec(experiment.SpecOptions{DestDomain: "DomainC", Bandwidth: 10 * units.Mbps})
	res, err := alice.ReserveE2E(bare)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network-only request: granted=%t (%s)\n", res.Granted, res.Reason)

	// The GARA co-reservation acquires 4 CPUs first, links the handle
	// into the RAR, and retries: every policy is satisfied.
	spec := alice.NewSpec(experiment.SpecOptions{DestDomain: "DomainC", Bandwidth: 10 * units.Mbps})
	handles, res, err := co.Reserve(alice, gara.CoRequest{Spec: spec, CPUs: 4}, gara.HopByHop)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Granted {
		log.Fatalf("co-reservation denied: %s", res.Reason)
	}
	fmt.Println("co-reservation granted; uniform GARA handles:")
	for _, h := range handles {
		fmt.Printf("  %s\n", h)
	}
	fmt.Printf("CPUs free at DomainC during the window: %d of 16\n",
		world.CPU["DomainC"].Available(spec.Window))

	// All-or-nothing: an impossible network request releases the CPUs.
	big := alice.NewSpec(experiment.SpecOptions{DestDomain: "DomainC", Bandwidth: 10 * units.Gbps})
	start := time.Now()
	_, res2, err := co.Reserve(alice, gara.CoRequest{Spec: big, CPUs: 4}, gara.HopByHop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oversized request: granted=%t in %v; CPUs free again: %d\n",
		res2.Granted, time.Since(start).Round(time.Millisecond),
		world.CPU["DomainC"].Available(big.Window))
}
