// Package e2eqos is a from-scratch reproduction of "End-to-End
// Provision of Policy Information for Network QoS" (Sander, Adamson,
// Foster, Roy — HPDC 2001): a multi-domain bandwidth-broker
// architecture with hop-by-hop signalling, transitive trust via nested
// signed envelopes, cascaded capability delegation, tunnels, and a
// packet-level DiffServ simulator that reproduces the paper's
// misreservation attack.
//
// The implementation lives under internal/ (see DESIGN.md for the
// system inventory); the runnable entry points are the binaries under
// cmd/ and the programs under examples/. The benchmarks in
// bench_test.go regenerate every figure-level experiment.
package e2eqos
