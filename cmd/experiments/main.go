// Command experiments regenerates every figure of the paper as a
// measured table. Run it with no arguments for the full suite, or
// select one experiment with -exp.
//
//	go run ./cmd/experiments            # everything
//	go run ./cmd/experiments -exp fig4  # just the misreservation attack
//	go run ./cmd/experiments -md        # markdown output (EXPERIMENTS.md)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"e2eqos/internal/experiment"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: fig1, fig3, fig4, fig5, fig6, fig7, trust, trust-scaling, tunnel, subflows, scale, fleet, keydist, billing, diffserv, faults, multipath, failover, all")
	md := flag.Bool("md", false, "emit markdown instead of aligned text")
	hopLatency := flag.Duration("latency", 5*time.Millisecond, "one-way signalling latency per hop")
	duration := flag.Duration("duration", 2*time.Second, "simulated traffic duration for fig4")
	trials := flag.Int("trials", 3, "trials per signalling measurement")
	callTimeout := flag.Duration("call-timeout", 100*time.Millisecond, "per-hop signalling deadline for the faults experiment")
	faultTrials := flag.Int("fault-trials", 20, "reservations per cell of the faults sweep")
	fleetUsers := flag.Int("fleet-users", 100_000, "simulated population for the fleet experiment")
	fleetSeed := flag.Uint64("fleet-seed", 1, "RNG seed for the fleet experiment")
	fleetBench := flag.String("fleet-bench", "", "write the fleet run as a BENCH_scale.json-style file at this path")
	flag.Parse()

	run := func(name string) bool { return *exp == "all" || *exp == name }
	emit := func(t *experiment.Table) {
		if *md {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t.Render())
		}
	}
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", name, err)
		os.Exit(1)
	}

	if run("fig1") {
		emit(experiment.RunFigure1())
	}
	if run("fig3") || run("fig5") {
		t, err := experiment.RunSignallingComparison(nil, *hopLatency, *trials)
		if err != nil {
			fail("fig3+fig5", err)
		}
		emit(t)
	}
	if run("fig4") {
		_, t, err := experiment.RunFigure4(*duration)
		if err != nil {
			fail("fig4", err)
		}
		emit(t)
		sweep, err := experiment.RunFigure4Sweep(nil, *duration)
		if err != nil {
			fail("fig4-sweep", err)
		}
		emit(sweep)
	}
	if run("fig5") {
		t, err := experiment.RunCoReservation()
		if err != nil {
			fail("fig5-coreservation", err)
		}
		emit(t)
	}
	if run("fig6") {
		t, err := experiment.RunFigure6()
		if err != nil {
			fail("fig6", err)
		}
		emit(t)
	}
	if run("fig7") {
		t, err := experiment.RunFigure7(4)
		if err != nil {
			fail("fig7", err)
		}
		emit(t)
	}
	if run("trust") {
		t, err := experiment.RunTrustChain(8)
		if err != nil {
			fail("trust", err)
		}
		emit(t)
	}
	if run("trust-scaling") {
		emit(experiment.RunTrustScaling(nil, nil))
	}
	if run("tunnel") {
		t, err := experiment.RunTunnelScaling(nil, 5, *hopLatency)
		if err != nil {
			fail("tunnel", err)
		}
		emit(t)
	}
	if run("subflows") {
		t, err := experiment.RunSubFlowLoad(experiment.SubFlowLoadConfig{
			Latency: *hopLatency / 10, // sub-flow signalling skips the chain: two ends, one hop
		})
		if err != nil {
			fail("subflows", err)
		}
		emit(t)
	}
	if run("scale") {
		dir, err := os.MkdirTemp("", "qos-events-")
		if err != nil {
			fail("scale", err)
		}
		defer os.RemoveAll(dir)
		t, err := experiment.RunScaleLoad(experiment.ScaleLoadConfig{
			Latency:    *hopLatency / 10,
			SampleRate: 0.01,
			EventsDir:  dir,
		})
		if err != nil {
			fail("scale", err)
		}
		emit(t)
	}
	// The fleet runs only when asked for by name: at its default
	// 100k-user population it dominates the suite's wall clock.
	if *exp == "fleet" {
		start := time.Now()
		res, t, err := experiment.RunFleetExperiment(experiment.FleetConfig{
			Users: *fleetUsers,
			Seed:  *fleetSeed,
		})
		if err != nil {
			fail("fleet", err)
		}
		emit(t)
		if *fleetBench != "" {
			machine := fmt.Sprintf("linux, Intel Xeon @ 2.10GHz, 1 hardware thread (nproc=%d)", runtime.NumCPU())
			date := time.Now().Format("2006-01-02")
			if err := experiment.WriteFleetBench(res, *fleetBench, machine, date, time.Since(start)); err != nil {
				fail("fleet-bench", err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *fleetBench)
		}
	}

	if run("keydist") {
		t, err := experiment.RunKeyDistribution(8)
		if err != nil {
			fail("keydist", err)
		}
		emit(t)
	}
	if run("diffserv") {
		t, err := experiment.RunDiffServChain(5, *duration)
		if err != nil {
			fail("diffserv", err)
		}
		emit(t)
	}
	if run("faults") {
		t, err := experiment.RunFaultSweep(experiment.FaultSweepConfig{
			CallTimeout: *callTimeout,
			Trials:      *faultTrials,
		})
		if err != nil {
			fail("faults", err)
		}
		emit(t)
	}
	if run("multipath") {
		t, err := experiment.RunMultipathExp(experiment.MultipathConfig{})
		if err != nil {
			fail("multipath", err)
		}
		emit(t)
	}
	if run("billing") {
		t, err := experiment.RunBilling(time.Second)
		if err != nil {
			fail("billing", err)
		}
		emit(t)
	}
	if run("failover") {
		dir, err := os.MkdirTemp("", "qos-replicas-")
		if err != nil {
			fail("failover", err)
		}
		defer os.RemoveAll(dir)
		t, err := experiment.RunFailover(experiment.FailoverConfig{StateDir: dir})
		if err != nil {
			fail("failover", err)
		}
		emit(t)
	}
}
