package main

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"e2eqos/internal/bb"
	"e2eqos/internal/obs"
)

// startAdmin serves the broker's operator endpoint on addr:
//
//	/metrics      Prometheus text exposition of the broker registry
//	/top          JSON live view: windowed rates, gauges, quantiles
//	/replication  JSON replica-group status (role, term, lag)
//	/promote      POST: stand this replica for election (failover)
//	/debug/pprof/ the standard Go profiler
//
// It binds synchronously (so a bad address fails startup, not five
// minutes into an incident) and then serves in the background. The
// returned closer stops the listener.
func startAdmin(addr string, broker *bb.BB, logger *slog.Logger) (func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("bbd: admin listen: %w", err)
	}
	reg := broker.MetricsRegistry()
	top := obs.NewTop(broker.Domain(), reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteText(w)
	})
	mux.HandleFunc("/top", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(top.Snapshot(time.Now()))
	})
	mux.HandleFunc("/replication", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(broker.ReplicationStatus())
	})
	mux.HandleFunc("/promote", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if err := broker.Promote(); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(broker.ReplicationStatus())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Error("admin server stopped", "err", err)
		}
	}()
	logger.Info("admin endpoint listening", "addr", ln.Addr().String())
	return srv.Close, nil
}
