// Command bbd is the bandwidth broker daemon: one per administrative
// domain. It serves the inter-BB signalling protocol over mutually
// authenticated TLS, enforcing the domain's policy file, SLA
// contracts and admission control.
//
//	bbd -config domain-a.json
//
// See cmd/bbd/config.go for the configuration schema and
// examples/quickstart for a scripted three-domain deployment.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"e2eqos/internal/cpusched"
	"e2eqos/internal/signalling"
)

// newCPUManager indirects cpusched construction so config.go stays
// free of resource-manager imports beyond its own.
func newCPUManager(domain string, cpus int) (*cpusched.Manager, error) {
	return cpusched.NewManager(domain, cpus)
}

func main() {
	configPath := flag.String("config", "", "path to the broker JSON config (required)")
	callTimeout := flag.String("call-timeout", "", "override call_timeout, e.g. 2s (0 waits forever)")
	maxRetries := flag.Int("max-retries", -1, "override max_retries for downstream calls")
	retryBackoff := flag.String("retry-backoff", "", "override retry_backoff, e.g. 50ms")
	breakerThreshold := flag.Int("breaker-threshold", -1, "override breaker_threshold (0 disables the circuit breaker)")
	breakerCooldown := flag.String("breaker-cooldown", "", "override breaker_cooldown, e.g. 5s")
	maxPaths := flag.Int("max-paths", -1, "override max_paths: disjoint domain paths tried per reservation (0/1 = single-path)")
	splitParts := flag.Int("split-parts", -1, "override split_parts: max paths one reservation may be split across (0 disables)")
	stateDir := flag.String("state-dir", "", "override state_dir: journal broker state here and recover it on boot (empty = memory-only)")
	fsyncPolicy := flag.String("fsync-policy", "", "override fsync_policy: batch, always or never (default batch)")
	adminAddr := flag.String("admin-addr", "", "override admin_addr: serve /metrics, /top and /debug/pprof/ here (empty disables)")
	eventsDir := flag.String("events-dir", "", "override events_dir: ring-buffer sampled flight-recorder events here (empty disables)")
	sampleRate := flag.Float64("sample-rate", -1, "override sample_rate: flight-recorder sampling probability in [0,1]")
	logLevel := flag.String("log-level", "", "override log_level: debug, info, warn or error (default info)")
	logFormat := flag.String("log-format", "", "override log_format: text or json (default text)")
	wireMode := flag.String("wire", "", "override wire: binary or json signalling encoding for outbound calls (default binary)")
	flag.Parse()
	if *configPath == "" {
		fmt.Fprintln(os.Stderr, "bbd: -config is required")
		os.Exit(2)
	}
	cfg, err := LoadConfig(*configPath)
	if err != nil {
		log.Fatal(err)
	}
	if *callTimeout != "" {
		cfg.CallTimeout = *callTimeout
	}
	if *maxRetries >= 0 {
		cfg.MaxRetries = *maxRetries
	}
	if *retryBackoff != "" {
		cfg.RetryBackoff = *retryBackoff
	}
	if *breakerThreshold >= 0 {
		cfg.BreakerThreshold = *breakerThreshold
	}
	if *breakerCooldown != "" {
		cfg.BreakerCooldown = *breakerCooldown
	}
	if *maxPaths >= 0 {
		cfg.MaxPaths = *maxPaths
	}
	if *splitParts >= 0 {
		cfg.SplitParts = *splitParts
	}
	if *stateDir != "" {
		cfg.StateDir = *stateDir
	}
	if *fsyncPolicy != "" {
		cfg.FsyncPolicy = *fsyncPolicy
	}
	if *adminAddr != "" {
		cfg.AdminAddr = *adminAddr
	}
	if *eventsDir != "" {
		cfg.EventsDir = *eventsDir
	}
	if *sampleRate >= 0 {
		cfg.SampleRate = *sampleRate
	}
	if *logLevel != "" {
		cfg.LogLevel = *logLevel
	}
	if *logFormat != "" {
		cfg.LogFormat = *logFormat
	}
	if *wireMode != "" {
		cfg.Wire = *wireMode
	}
	broker, ln, recorder, err := cfg.Build()
	if err != nil {
		log.Fatal(err)
	}
	logger := broker.Logger()
	logger.Info("bbd listening", "dn", string(broker.DN()), "addr", ln.Addr())

	if cfg.AdminAddr != "" {
		closeAdmin, err := startAdmin(cfg.AdminAddr, broker, logger)
		if err != nil {
			log.Fatal(err)
		}
		defer closeAdmin()
	}

	go signalling.ServeWith(ln, broker, logger)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	logger.Info("bbd shutting down")
	ln.Close()
	broker.Close()
	// The recorder outlives the broker: in-flight handlers may still
	// append events until Close drains them.
	if err := recorder.Close(); err != nil {
		logger.Warn("flight recorder close", "err", err)
	}
}
