package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"e2eqos/internal/bb"
	"e2eqos/internal/identity"
	"e2eqos/internal/journal"
	"e2eqos/internal/obs"
	"e2eqos/internal/pki"
	"e2eqos/internal/policy"
	"e2eqos/internal/policysrv"
	"e2eqos/internal/signalling"
	"e2eqos/internal/sla"
	"e2eqos/internal/topology"
	"e2eqos/internal/transport"
	"e2eqos/internal/units"
)

// FileConfig is the JSON configuration of one bandwidth broker daemon.
type FileConfig struct {
	// Domain is the administrative domain this broker controls.
	Domain string `json:"domain"`
	// Listen is the TLS listen address, e.g. "127.0.0.1:7001".
	Listen string `json:"listen"`
	// KeyFile / CertFile are the broker's PEM identity.
	KeyFile  string `json:"key_file"`
	CertFile string `json:"cert_file"`
	// RootFiles are trusted CA certificates (the home CA at minimum,
	// so local users authenticate; peers are pinned, not CA-verified).
	RootFiles []string `json:"root_files"`
	// Capacity is the premium aggregate, e.g. "100Mb/s".
	Capacity string `json:"capacity"`
	// PolicyFile holds the domain policy in the internal/policy DSL;
	// PolicyText inlines it instead.
	PolicyFile string `json:"policy_file,omitempty"`
	PolicyText string `json:"policy_text,omitempty"`
	// IntroducerDepth bounds accepted trust chains (default 16).
	IntroducerDepth int `json:"introducer_depth,omitempty"`
	// Domains and Links describe the inter-domain topology.
	Domains []DomainConfig `json:"domains"`
	Links   []LinkConfig   `json:"links"`
	// Peers lists the SLA-peered brokers.
	Peers []PeerConfig `json:"peers"`
	// CPUs, when positive, co-manages a CPU pool of that size.
	CPUs int `json:"cpus,omitempty"`

	// CallTimeout bounds every downstream signalling call, e.g. "2s"
	// (default "5s"; "0" waits forever). Overridable with -call-timeout.
	CallTimeout string `json:"call_timeout,omitempty"`
	// MaxRetries retries transport-failed downstream calls with
	// exponential backoff starting at RetryBackoff (e.g. "50ms").
	MaxRetries   int    `json:"max_retries,omitempty"`
	RetryBackoff string `json:"retry_backoff,omitempty"`
	// BreakerThreshold consecutive transport failures open the per-peer
	// circuit for BreakerCooldown (e.g. "5s"). Zero disables.
	BreakerThreshold int    `json:"breaker_threshold,omitempty"`
	BreakerCooldown  string `json:"breaker_cooldown,omitempty"`
	// MaxPaths enables multipath routing at this broker's ingress: up
	// to max_paths edge-disjoint domain paths are tried in cost order,
	// re-routing around dead peers, open breakers and mid-chain
	// denials. Zero or one keeps single-path routing.
	MaxPaths int `json:"max_paths,omitempty"`
	// SplitParts caps how many paths one reservation may be split
	// across when no single path has the capacity (requires
	// max_paths > 1; zero disables splitting).
	SplitParts int `json:"split_parts,omitempty"`

	// StateDir, when set, makes the broker durable: reservation and
	// RAR-cache mutations are journaled there and recovered on boot, so
	// a restart (or crash) no longer forgets granted reservations.
	// Overridable with -state-dir. Default "" = memory-only.
	StateDir string `json:"state_dir,omitempty"`
	// FsyncPolicy selects when journal records reach stable storage:
	// "batch" (group-commit, the default), "always" (fsync per record)
	// or "never" (OS write-through only). Overridable with
	// -fsync-policy.
	FsyncPolicy string `json:"fsync_policy,omitempty"`
	// Wire selects the encoding of outbound signalling calls: "binary"
	// (the default) or "json" (debug/interop). Peers always answer in
	// the caller's encoding, so this never needs to match the peer's
	// own setting. Overridable with -wire.
	Wire string `json:"wire,omitempty"`

	// ReplicaID and ReplicaPeers turn the broker into one member of a
	// replicated group: ReplicaPeers maps every replica id (including
	// this broker's own) to its signalling address, all replicas share
	// the domain's key and certificate, and the leader streams its
	// journal to the followers. Requires state_dir. Empty peers =
	// unreplicated (the default).
	ReplicaID    int            `json:"replica_id,omitempty"`
	ReplicaPeers map[int]string `json:"replica_peers,omitempty"`
	// StartAsFollower boots this replica as a follower waiting for a
	// leader's stream instead of assuming leadership. Every replica
	// but one should set it.
	StartAsFollower bool `json:"start_as_follower,omitempty"`
	// ElectionTimeout, when set (e.g. "2s"), arms automatic failover:
	// a follower that hears no leader for this long (staggered by
	// replica id) stands for election. "" keeps failover manual
	// (`qosctl promote` / the admin endpoint).
	ElectionTimeout string `json:"election_timeout,omitempty"`

	// AdminAddr, when set (e.g. "127.0.0.1:7101"), serves the broker's
	// admin HTTP endpoint: Prometheus metrics on /metrics, the live
	// rate/quantile view on /top, and the pprof profiler under
	// /debug/pprof/. Default "" = disabled (metrics are still
	// collected; they are just not exposed).
	AdminAddr string `json:"admin_addr,omitempty"`
	// EventsDir, when set, turns on the flight recorder: sampled wide
	// events (plus every denial and downstream failure) are written as
	// binary records into a bounded ring of segment files in this
	// directory, readable with `qosctl events -dir <dir>`. Overridable
	// with -events-dir. Default "" = disabled.
	EventsDir string `json:"events_dir,omitempty"`
	// SampleRate is the flight-recorder sampling probability for
	// requests entering the network at this broker (0 = record only
	// forced events, 1 = record everything). Only meaningful with
	// events_dir set. Overridable with -sample-rate.
	SampleRate float64 `json:"sample_rate,omitempty"`
	// LogLevel is the minimum structured-log severity: "debug", "info",
	// "warn" or "error". Default "" = "info".
	LogLevel string `json:"log_level,omitempty"`
	// LogFormat selects the stderr log encoding: "text" or "json".
	// Default "" = "text".
	LogFormat string `json:"log_format,omitempty"`
}

// DomainConfig mirrors topology.Domain.
type DomainConfig struct {
	Name     string   `json:"name"`
	BBDN     string   `json:"bb_dn"`
	Prefixes []string `json:"prefixes,omitempty"`
}

// LinkConfig is one peering link.
type LinkConfig struct {
	A        string `json:"a"`
	B        string `json:"b"`
	Capacity string `json:"capacity,omitempty"`
	Cost     int    `json:"cost,omitempty"`
}

// PeerConfig is one SLA-peered broker.
type PeerConfig struct {
	Domain   string `json:"domain"`
	Addr     string `json:"addr"`
	CertFile string `json:"cert_file"`
	// SLARate is the contracted aggregate entering from / leaving to
	// this peer (default: the broker capacity).
	SLARate string `json:"sla_rate,omitempty"`
}

// LoadConfig reads and validates a config file.
func LoadConfig(path string) (*FileConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bbd: %w", err)
	}
	var cfg FileConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("bbd: parsing %s: %w", path, err)
	}
	if cfg.Domain == "" || cfg.Listen == "" || cfg.KeyFile == "" || cfg.CertFile == "" {
		return nil, fmt.Errorf("bbd: config must set domain, listen, key_file, cert_file")
	}
	if cfg.Capacity == "" {
		cfg.Capacity = "100Mb/s"
	}
	return &cfg, nil
}

// Build assembles the broker, its TLS listener, and (when events_dir
// is set) the flight recorder; the caller owns closing the recorder
// after the broker shuts down.
func (cfg *FileConfig) Build() (*bb.BB, *transport.TLSListener, *obs.Recorder, error) {
	cert, err := pki.LoadCertFile(cfg.CertFile)
	if err != nil {
		return nil, nil, nil, err
	}
	key, err := pki.LoadKeyFile(cfg.KeyFile, cert.SubjectDN())
	if err != nil {
		return nil, nil, nil, err
	}
	capacity, err := units.ParseBandwidth(cfg.Capacity)
	if err != nil {
		return nil, nil, nil, err
	}

	depth := cfg.IntroducerDepth
	if depth <= 0 {
		depth = 16
	}
	trust := pki.NewTrustStore(depth)
	var rootDERs [][]byte
	for _, path := range cfg.RootFiles {
		root, err := pki.LoadCertFile(path)
		if err != nil {
			return nil, nil, nil, err
		}
		if err := trust.AddRoot(root); err != nil {
			return nil, nil, nil, err
		}
		rootDERs = append(rootDERs, root.DER)
	}

	topo := topology.New()
	for _, d := range cfg.Domains {
		if err := topo.AddDomain(topology.Domain{
			Name:     d.Name,
			BBDN:     identity.DN(d.BBDN),
			Prefixes: d.Prefixes,
		}); err != nil {
			return nil, nil, nil, err
		}
	}
	for _, l := range cfg.Links {
		capac := capacity
		if l.Capacity != "" {
			if capac, err = units.ParseBandwidth(l.Capacity); err != nil {
				return nil, nil, nil, err
			}
		}
		if err := topo.AddLink(topology.Link{A: l.A, B: l.B, Capacity: capac, Cost: l.Cost}); err != nil {
			return nil, nil, nil, err
		}
	}

	policyText := cfg.PolicyText
	if cfg.PolicyFile != "" {
		data, err := os.ReadFile(cfg.PolicyFile)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("bbd: %w", err)
		}
		policyText = string(data)
	}
	if policyText == "" {
		policyText = "allow if bw <= avail\ndeny"
	}
	pol, err := policy.Parse(cfg.Domain, policyText)
	if err != nil {
		return nil, nil, nil, err
	}
	ps := policysrv.New(cfg.Domain, pol)

	inbound := make(map[string]*sla.SLA)
	peerCerts := make(map[identity.DN]*pki.Certificate)
	peerAddrs := make(map[identity.DN]string)
	for _, p := range cfg.Peers {
		peerCert, err := pki.LoadCertFile(p.CertFile)
		if err != nil {
			return nil, nil, nil, err
		}
		pub := peerCert.PublicKey()
		if pub == nil {
			return nil, nil, nil, fmt.Errorf("bbd: peer %s has non-ECDSA key", p.Domain)
		}
		trust.PinPeer(peerCert.SubjectDN(), pub)
		peerCerts[peerCert.SubjectDN()] = peerCert
		peerAddrs[peerCert.SubjectDN()] = p.Addr
		rate := capacity
		if p.SLARate != "" {
			if rate, err = units.ParseBandwidth(p.SLARate); err != nil {
				return nil, nil, nil, err
			}
		}
		inbound[p.Domain] = &sla.SLA{
			Upstream:   p.Domain,
			Downstream: cfg.Domain,
			Service: sla.SLS{
				Profile:     sla.TrafficProfile{Rate: rate, BucketBytes: 64_000},
				Excess:      sla.Drop,
				MaxLatency:  5 * time.Millisecond,
				Reliability: 0.999,
			},
			DownstreamBBDN: cert.SubjectDN(),
			UpstreamBBDN:   peerCert.SubjectDN(),
		}
	}

	tlsCfg := &transport.TLSConfig{CertDER: cert.DER, Key: key.Private, RootDERs: rootDERs}
	dialer := transport.NewTLSDialer(tlsCfg)

	parseDur := func(name, s string, def time.Duration) (time.Duration, error) {
		if s == "" {
			return def, nil
		}
		d, err := time.ParseDuration(s)
		if err != nil {
			return 0, fmt.Errorf("bbd: %s: %w", name, err)
		}
		return d, nil
	}
	callTimeout, err := parseDur("call_timeout", cfg.CallTimeout, 5*time.Second)
	if err != nil {
		return nil, nil, nil, err
	}
	// The same budget bounds connection establishment: a peer that
	// accepts TCP but never finishes the TLS handshake must not stall
	// the broker past the call deadline.
	dialer.Timeout = callTimeout
	retryBackoff, err := parseDur("retry_backoff", cfg.RetryBackoff, 0)
	if err != nil {
		return nil, nil, nil, err
	}
	breakerCooldown, err := parseDur("breaker_cooldown", cfg.BreakerCooldown, 0)
	if err != nil {
		return nil, nil, nil, err
	}
	electionTimeout, err := parseDur("election_timeout", cfg.ElectionTimeout, 0)
	if err != nil {
		return nil, nil, nil, err
	}
	if len(cfg.ReplicaPeers) > 1 {
		if cfg.StateDir == "" {
			return nil, nil, nil, fmt.Errorf("bbd: replica_peers requires state_dir (the replication stream is the journal)")
		}
		if _, ok := cfg.ReplicaPeers[cfg.ReplicaID]; !ok {
			return nil, nil, nil, fmt.Errorf("bbd: replica_peers must include this broker's own replica_id %d", cfg.ReplicaID)
		}
	}

	level, err := obs.ParseLevel(cfg.LogLevel)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("bbd: %w", err)
	}
	logger, err := obs.NewLogger(os.Stderr, level, cfg.LogFormat)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("bbd: %w", err)
	}
	metrics := obs.NewRegistry()
	dialer.Metrics = transport.NewMetrics(metrics)

	fsync, err := journal.ParsePolicy(cfg.FsyncPolicy)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("bbd: %w", err)
	}
	wireMode, err := signalling.ParseWireMode(cfg.Wire)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("bbd: %w", err)
	}

	var recorder *obs.Recorder
	if cfg.EventsDir != "" {
		recorder, err = obs.OpenRecorder(obs.RecorderOptions{Dir: cfg.EventsDir})
		if err != nil {
			return nil, nil, nil, fmt.Errorf("bbd: %w", err)
		}
	}

	bbCfg := bb.Config{
		Domain:           cfg.Domain,
		Key:              key,
		Cert:             cert,
		Trust:            trust,
		Policy:           ps,
		Capacity:         capacity,
		Topo:             topo,
		InboundSLAs:      inbound,
		PeerCerts:        peerCerts,
		PeerAddrs:        peerAddrs,
		Dialer:           dialer,
		CallTimeout:      callTimeout,
		MaxRetries:       cfg.MaxRetries,
		RetryBackoff:     retryBackoff,
		BreakerThreshold: cfg.BreakerThreshold,
		BreakerCooldown:  breakerCooldown,
		MaxPaths:         cfg.MaxPaths,
		SplitParts:       cfg.SplitParts,
		Logger:           logger,
		Metrics:          metrics,
		StateDir:         cfg.StateDir,
		Fsync:            fsync,
		Wire:             wireMode,
		Recorder:         recorder,
		SampleRate:       cfg.SampleRate,
	}
	if len(cfg.ReplicaPeers) > 1 {
		bbCfg.ReplicaID = cfg.ReplicaID
		bbCfg.ReplicaAddrs = cfg.ReplicaPeers
		bbCfg.StartAsFollower = cfg.StartAsFollower
		bbCfg.ElectionTimeout = electionTimeout
	}
	if cfg.CPUs > 0 {
		cpuMgr, err := newCPUManager(cfg.Domain, cfg.CPUs)
		if err != nil {
			recorder.Close()
			return nil, nil, nil, err
		}
		bbCfg.CPU = cpuMgr
	}
	broker, err := bb.New(bbCfg)
	if err != nil {
		recorder.Close()
		return nil, nil, nil, err
	}
	ln, err := transport.ListenTLS(cfg.Listen, tlsCfg)
	if err != nil {
		recorder.Close()
		return nil, nil, nil, err
	}
	ln.Metrics = dialer.Metrics
	return broker, ln, recorder, nil
}
