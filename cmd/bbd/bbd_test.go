package main

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"e2eqos/internal/core"
	"e2eqos/internal/identity"
	"e2eqos/internal/pki"
	"e2eqos/internal/signalling"
	"e2eqos/internal/transport"
	"e2eqos/internal/units"
)

// freePorts reserves n distinct loopback TCP ports.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	var listeners []net.Listener
	var ports []int
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners = append(listeners, ln)
		ports = append(ports, ln.Addr().(*net.TCPAddr).Port)
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return ports
}

// deployment is a running three-domain TLS testbed.
type deployment struct {
	dir      string
	caPath   string
	addrs    []string
	userKey  *identity.KeyPair
	userCert *pki.Certificate
	roots    [][]byte
}

func deploy(t *testing.T) *deployment {
	t.Helper()
	dir := t.TempDir()
	ca, err := pki.NewCA(identity.NewDN("Grid", "", "RootCA"))
	if err != nil {
		t.Fatal(err)
	}
	caPath := filepath.Join(dir, "ca.cert.pem")
	if err := pki.SaveCertFile(caPath, ca.CertificateDER()); err != nil {
		t.Fatal(err)
	}

	ports := freePorts(t, 3)
	domains := []string{"DomainA", "DomainB", "DomainC"}
	var addrs []string
	var bbDNs []identity.DN
	for i, dom := range domains {
		addrs = append(addrs, fmt.Sprintf("127.0.0.1:%d", ports[i]))
		bbDNs = append(bbDNs, identity.NewDN("Grid", dom, "bb"))
	}

	// Broker identities.
	for i, dom := range domains {
		key, err := identity.GenerateKeyPair(bbDNs[i])
		if err != nil {
			t.Fatal(err)
		}
		cert, err := ca.IssueIdentity(key.DN, key.Public(), 0, "bb")
		if err != nil {
			t.Fatal(err)
		}
		if err := pki.SaveCertFile(filepath.Join(dir, dom+".cert.pem"), cert.DER); err != nil {
			t.Fatal(err)
		}
		if err := pki.SaveKeyFile(filepath.Join(dir, dom+".key.pem"), key.Private); err != nil {
			t.Fatal(err)
		}
	}

	// User identity.
	userKey, err := identity.GenerateKeyPair(identity.NewDN("Grid", "DomainA", "Alice"))
	if err != nil {
		t.Fatal(err)
	}
	userCert, err := ca.IssueIdentity(userKey.DN, userKey.Public(), 0)
	if err != nil {
		t.Fatal(err)
	}

	// Shared topology snippet.
	domCfgs := make([]DomainConfig, len(domains))
	for i, dom := range domains {
		domCfgs[i] = DomainConfig{Name: dom, BBDN: string(bbDNs[i]), Prefixes: []string{"host" + dom + "."}}
	}
	links := []LinkConfig{{A: "DomainA", B: "DomainB"}, {A: "DomainB", B: "DomainC"}}

	// Per-domain configs; each peers with its topology neighbours.
	neighbours := map[string][]int{"DomainA": {1}, "DomainB": {0, 2}, "DomainC": {1}}
	for i, dom := range domains {
		var peers []PeerConfig
		for _, j := range neighbours[dom] {
			peers = append(peers, PeerConfig{
				Domain:   domains[j],
				Addr:     addrs[j],
				CertFile: filepath.Join(dir, domains[j]+".cert.pem"),
			})
		}
		cfg := &FileConfig{
			Domain:    dom,
			Listen:    addrs[i],
			KeyFile:   filepath.Join(dir, dom+".key.pem"),
			CertFile:  filepath.Join(dir, dom+".cert.pem"),
			RootFiles: []string{caPath},
			Capacity:  "100Mb/s",
			Domains:   domCfgs,
			Links:     links,
			Peers:     peers,
			// Record every request so the deployment also exercises the
			// flight-recorder path end to end.
			EventsDir:  filepath.Join(dir, dom+"-events"),
			SampleRate: 1,
		}
		broker, ln, recorder, err := cfg.Build()
		if err != nil {
			t.Fatalf("building %s: %v", dom, err)
		}
		t.Cleanup(func() { ln.Close(); broker.Close(); recorder.Close() })
		go signalling.Serve(ln, broker)
	}
	return &deployment{
		dir:      dir,
		caPath:   caPath,
		addrs:    addrs,
		userKey:  userKey,
		userCert: userCert,
		roots:    [][]byte{ca.CertificateDER()},
	}
}

func (d *deployment) dialSource(t *testing.T) *signalling.Client {
	t.Helper()
	dialer := transport.NewTLSDialer(&transport.TLSConfig{
		CertDER:  d.userCert.DER,
		Key:      d.userKey.Private,
		RootDERs: d.roots,
	})
	var client *signalling.Client
	var err error
	for attempt := 0; attempt < 20; attempt++ {
		client, err = signalling.Dial(dialer, d.addrs[0])
		if err == nil {
			return client
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("dialing source broker: %v", err)
	return nil
}

func TestDaemonEndToEndReservationOverTLS(t *testing.T) {
	d := deploy(t)
	client := d.dialSource(t)
	defer client.Close()

	agent, err := core.NewUserAgent(d.userKey, d.userCert, nil)
	if err != nil {
		t.Fatal(err)
	}
	bbCert, err := pki.ParseCertificate(client.PeerCertDER())
	if err != nil {
		t.Fatal(err)
	}
	spec := &core.Spec{
		RARID:        core.NewRARID(),
		User:         d.userKey.DN,
		SrcHost:      "hostDomainA.example",
		DstHost:      "hostDomainC.example",
		SourceDomain: "DomainA",
		DestDomain:   "DomainC",
		Bandwidth:    10 * units.Mbps,
		Window:       units.NewWindow(time.Now().Add(time.Minute), time.Hour),
	}
	rar, err := agent.BuildRAR(spec, bbCert)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := signalling.NewReserveMessage(signalling.ModeEndToEnd, rar)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Call(msg)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result == nil || !resp.Result.Granted {
		t.Fatalf("reservation failed: %+v", resp.Result)
	}
	if len(resp.Result.Approvals) != 3 {
		t.Fatalf("approvals = %d, want 3 (one per domain over real TLS)", len(resp.Result.Approvals))
	}

	// Status then cancel via the daemon.
	statusResp, err := client.Call(&signalling.Message{Type: signalling.MsgStatus, Status: &signalling.StatusPayload{RARID: spec.RARID}})
	if err != nil {
		t.Fatal(err)
	}
	if statusResp.Result == nil || !statusResp.Result.Granted {
		t.Fatalf("status failed: %+v", statusResp.Result)
	}
	cancelResp, err := client.Call(&signalling.Message{Type: signalling.MsgCancel, Cancel: &signalling.CancelPayload{RARID: spec.RARID}})
	if err != nil {
		t.Fatal(err)
	}
	if cancelResp.Result == nil || !cancelResp.Result.Granted {
		t.Fatalf("cancel failed: %+v", cancelResp.Result)
	}
}

func TestLoadConfigValidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte(`{"domain":"A"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(path); err == nil {
		t.Fatal("incomplete config accepted")
	}
	if _, err := LoadConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(path); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}
