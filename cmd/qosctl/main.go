// Command qosctl is the user-side client: it builds a signed RAR from
// the user's credentials and submits it to the source domain's
// bandwidth broker over mutually authenticated TLS.
//
//	qosctl -bb 127.0.0.1:7001 -key alice.key.pem -cert alice.cert.pem \
//	       -roots pki/ca.cert.pem reserve \
//	       -src hostA.example -dst hostC.example \
//	       -src-domain DomainA -dst-domain DomainC -bw 10Mb/s -duration 1h
//
//	qosctl ... cancel -rar RAR-abcdef
//	qosctl ... status -rar RAR-abcdef
//
// Two telemetry subcommands need no credentials: `qosctl top -admin
// 127.0.0.1:7101` renders a broker's live rate/quantile view, and
// `qosctl events -dir /var/lib/bbd/events` reads its flight-recorder
// log.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"e2eqos/internal/core"
	"e2eqos/internal/identity"
	"e2eqos/internal/obs"
	"e2eqos/internal/pki"
	"e2eqos/internal/signalling"
	"e2eqos/internal/transport"
	"e2eqos/internal/units"
)

func die(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "qosctl: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	bbAddr := flag.String("bb", "127.0.0.1:7001", "source-domain broker address")
	keyFile := flag.String("key", "", "user key PEM (required)")
	certFile := flag.String("cert", "", "user certificate PEM (required)")
	roots := flag.String("roots", "", "comma-separated trusted CA certificate PEMs (required)")
	timeout := flag.Duration("timeout", 30*time.Second, "bound on connecting and on each call (0 waits forever)")
	wireFlag := flag.String("wire", "", "signalling encoding: binary (default) or json (debug/interop)")
	flag.Parse()
	if flag.NArg() < 1 {
		die("usage: qosctl [flags] reserve|cancel|status|tunnel-alloc|tunnel-release|tunnel-batch-alloc|tunnel-batch-release|events|top [command flags]")
	}
	// events reads the on-disk flight-recorder log and top polls the
	// plain-HTTP admin endpoint: neither signs anything nor dials the
	// signalling port, so neither needs the TLS identity below.
	switch flag.Arg(0) {
	case "events":
		runEvents(flag.Args()[1:])
		return
	case "top":
		runTop(flag.Args()[1:])
		return
	}
	if *keyFile == "" || *certFile == "" || *roots == "" {
		die("-key, -cert and -roots are required")
	}

	cert, err := pki.LoadCertFile(*certFile)
	if err != nil {
		die("%v", err)
	}
	key, err := pki.LoadKeyFile(*keyFile, cert.SubjectDN())
	if err != nil {
		die("%v", err)
	}
	var rootDERs [][]byte
	for _, p := range strings.Split(*roots, ",") {
		root, err := pki.LoadCertFile(strings.TrimSpace(p))
		if err != nil {
			die("%v", err)
		}
		rootDERs = append(rootDERs, root.DER)
	}
	dialer := transport.NewTLSDialer(&transport.TLSConfig{CertDER: cert.DER, Key: key.Private, RootDERs: rootDERs})
	dialer.Timeout = *timeout
	client, err := signalling.Dial(dialer, *bbAddr)
	if err != nil {
		die("dialing broker: %v", err)
	}
	defer client.Close()
	client.Timeout = *timeout
	client.Wire, err = signalling.ParseWireMode(*wireFlag)
	if err != nil {
		die("%v", err)
	}

	switch flag.Arg(0) {
	case "reserve":
		runReserve(client, key, cert, flag.Args()[1:])
	case "cancel":
		runSimple(client, signalling.MsgCancel, flag.Args()[1:])
	case "status":
		runSimple(client, signalling.MsgStatus, flag.Args()[1:])
	case "tunnel-alloc":
		runTunnelAlloc(client, key, flag.Args()[1:])
	case "tunnel-release":
		runTunnelRelease(client, flag.Args()[1:])
	case "tunnel-batch-alloc":
		runTunnelBatch(client, key, signalling.OpAlloc, flag.Args()[1:])
	case "tunnel-batch-release":
		runTunnelBatch(client, key, signalling.OpRelease, flag.Args()[1:])
	default:
		die("unknown command %q", flag.Arg(0))
	}
}

// runTunnelAlloc allocates a sub-flow inside an established tunnel.
// The command talks to the broker terminating the tunnel at the
// user's side; that broker coordinates with the far end over the
// direct channel.
func runTunnelAlloc(client *signalling.Client, key *identity.KeyPair, args []string) {
	fs := flag.NewFlagSet("tunnel-alloc", flag.ExitOnError)
	rar := fs.String("rar", "", "tunnel RAR id (required)")
	sub := fs.String("sub", "", "sub-flow id (required)")
	bwStr := fs.String("bw", "1Mb/s", "sub-flow bandwidth")
	_ = fs.Parse(args)
	if *rar == "" || *sub == "" {
		die("tunnel-alloc: -rar and -sub are required")
	}
	bw, err := units.ParseBandwidth(*bwStr)
	if err != nil {
		die("%v", err)
	}
	resp, err := client.Call(&signalling.Message{
		Type: signalling.MsgTunnelAlloc,
		TunnelAlloc: &signalling.TunnelAllocPayload{
			TunnelRARID: *rar,
			SubFlowID:   *sub,
			User:        key.DN,
			Bandwidth:   int64(bw),
		},
	})
	if err != nil {
		die("%v", err)
	}
	printResult(*rar+"/"+*sub, resp)
}

// runTunnelRelease frees a sub-flow.
func runTunnelRelease(client *signalling.Client, args []string) {
	fs := flag.NewFlagSet("tunnel-release", flag.ExitOnError)
	rar := fs.String("rar", "", "tunnel RAR id (required)")
	sub := fs.String("sub", "", "sub-flow id (required)")
	_ = fs.Parse(args)
	if *rar == "" || *sub == "" {
		die("tunnel-release: -rar and -sub are required")
	}
	resp, err := client.Call(&signalling.Message{
		Type:          signalling.MsgTunnelRelease,
		TunnelRelease: &signalling.TunnelReleasePayload{TunnelRARID: *rar, SubFlowID: *sub},
	})
	if err != nil {
		die("%v", err)
	}
	printResult(*rar+"/"+*sub, resp)
}

// runTunnelBatch allocates or releases many sub-flows in one round
// trip. The batch id is printed so a user whose connection died can
// retransmit the identical batch with -batch-id and get the recorded
// answer instead of a double admission.
func runTunnelBatch(client *signalling.Client, key *identity.KeyPair, action signalling.TunnelOpAction, args []string) {
	fs := flag.NewFlagSet("tunnel-batch-"+string(action), flag.ExitOnError)
	rar := fs.String("rar", "", "tunnel RAR id (required)")
	subs := fs.String("subs", "", "comma-separated sub-flow ids (required)")
	bwStr := fs.String("bw", "1Mb/s", "per-sub-flow bandwidth (alloc only)")
	batchID := fs.String("batch-id", "", "batch id to reuse when retransmitting (default: fresh)")
	_ = fs.Parse(args)
	if *rar == "" || *subs == "" {
		die("tunnel-batch-%s: -rar and -subs are required", action)
	}
	var bw units.Bandwidth
	if action == signalling.OpAlloc {
		var err error
		if bw, err = units.ParseBandwidth(*bwStr); err != nil {
			die("%v", err)
		}
	}
	payload := &signalling.TunnelBatchPayload{
		TunnelRARID: *rar,
		BatchID:     *batchID,
		User:        key.DN,
	}
	if payload.BatchID == "" {
		payload.BatchID = signalling.NewBatchID()
	}
	for _, sub := range strings.Split(*subs, ",") {
		op := signalling.TunnelOp{Action: action, SubFlowID: strings.TrimSpace(sub)}
		if action == signalling.OpAlloc {
			op.Bandwidth = int64(bw)
		}
		payload.Ops = append(payload.Ops, op)
	}
	if err := payload.Validate(); err != nil {
		die("tunnel-batch-%s: %v", action, err)
	}
	resp, err := client.Call(&signalling.Message{Type: signalling.MsgTunnelBatch, TunnelBatch: payload})
	if err != nil {
		die("%v", err)
	}
	if resp.Result == nil {
		die("broker sent no result")
	}
	fmt.Printf("batch %s: %d ops, granted=%t", payload.BatchID, len(payload.Ops), resp.Result.Granted)
	if !resp.Result.Granted {
		fmt.Printf(" (%s)", resp.Result.Reason)
	}
	fmt.Println()
	for _, r := range resp.Result.BatchResults {
		status := "granted"
		if !r.Granted {
			status = "denied: " + r.Reason
		}
		fmt.Printf("  %s/%s %s\n", *rar, r.SubFlowID, status)
	}
	if !resp.Result.Granted {
		os.Exit(1)
	}
}

func runReserve(client *signalling.Client, key *identity.KeyPair, cert *pki.Certificate, args []string) {
	fs := flag.NewFlagSet("reserve", flag.ExitOnError)
	src := fs.String("src", "", "source host (required)")
	dst := fs.String("dst", "", "destination host (required)")
	srcDomain := fs.String("src-domain", "", "source domain (required)")
	dstDomain := fs.String("dst-domain", "", "destination domain (required)")
	bwStr := fs.String("bw", "10Mb/s", "bandwidth")
	startIn := fs.Duration("start-in", time.Minute, "reservation start offset from now")
	duration := fs.Duration("duration", time.Hour, "reservation duration")
	tunnelFlag := fs.Bool("tunnel", false, "request an aggregate tunnel reservation")
	cpuHandle := fs.String("cpu-handle", "", "linked CPU reservation handle at the destination")
	traceFlag := fs.Bool("trace", false, "ask every hop to record a span; print the per-hop timeline")
	_ = fs.Parse(args)
	if *src == "" || *dst == "" || *srcDomain == "" || *dstDomain == "" {
		die("reserve: -src, -dst, -src-domain and -dst-domain are required")
	}
	bw, err := units.ParseBandwidth(*bwStr)
	if err != nil {
		die("%v", err)
	}
	agent, err := core.NewUserAgent(key, cert, nil)
	if err != nil {
		die("%v", err)
	}
	spec := &core.Spec{
		RARID:        core.NewRARID(),
		User:         key.DN,
		SrcHost:      *src,
		DstHost:      *dst,
		SourceDomain: *srcDomain,
		DestDomain:   *dstDomain,
		Bandwidth:    bw,
		Window:       units.NewWindow(time.Now().Add(*startIn), *duration),
		Tunnel:       *tunnelFlag,
	}
	if *cpuHandle != "" {
		spec.LinkedHandles = map[string]string{"cpu": *cpuHandle}
	}
	// The TLS handshake already gave us the broker's certificate: the
	// RAR is addressed (and the capability delegated) to it.
	bbCert, err := pki.ParseCertificate(client.PeerCertDER())
	if err != nil {
		die("broker certificate: %v", err)
	}
	rar, err := agent.BuildRAR(spec, bbCert)
	if err != nil {
		die("%v", err)
	}
	msg, err := signalling.NewReserveMessage(signalling.ModeEndToEnd, rar)
	if err != nil {
		die("%v", err)
	}
	if *traceFlag {
		msg.Reserve.TraceID = obs.NewTraceID()
	}
	resp, err := client.Call(msg)
	if err != nil {
		die("%v", err)
	}
	printResult(spec.RARID, resp)
}

func runSimple(client *signalling.Client, typ signalling.MsgType, args []string) {
	fs := flag.NewFlagSet(string(typ), flag.ExitOnError)
	rar := fs.String("rar", "", "RAR id (required)")
	_ = fs.Parse(args)
	if *rar == "" {
		die("%s: -rar is required", typ)
	}
	msg := &signalling.Message{Type: typ}
	switch typ {
	case signalling.MsgCancel:
		msg.Cancel = &signalling.CancelPayload{RARID: *rar}
	case signalling.MsgStatus:
		msg.Status = &signalling.StatusPayload{RARID: *rar}
	}
	resp, err := client.Call(msg)
	if err != nil {
		die("%v", err)
	}
	printResult(*rar, resp)
}

func printResult(rarID string, resp *signalling.Message) {
	if resp.Result == nil {
		die("broker sent no result")
	}
	r := resp.Result
	if !r.Granted {
		fmt.Printf("DENIED %s: %s\n", rarID, r.Reason)
		printTrace(r)
		os.Exit(1)
	}
	fmt.Printf("GRANTED %s handle=%s\n", rarID, r.Handle)
	for _, a := range r.Approvals {
		fmt.Printf("  approval: domain=%s bb=%s handle=%s granted=%t\n", a.Domain, a.BBDN, a.Handle, a.Granted)
	}
	for k, v := range r.PolicyInfo {
		fmt.Printf("  info: %s=%s\n", k, v)
	}
	printTrace(r)
}

// printTrace renders the per-hop timeline of a traced reserve; on a
// denial it names the hop that refused (or timed out) and shows where
// the chain's time went.
func printTrace(r *signalling.ResultPayload) {
	if len(r.Trace) == 0 {
		return
	}
	fmt.Print(obs.RenderTimeline(r.TraceID, r.Trace))
}
