package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"strings"
	"time"

	"e2eqos/internal/obs"
)

// runTop polls one or more brokers' admin /top endpoints and renders
// the live view: windowed counter rates, gauge levels, and latency
// quantiles. The admin endpoint is plain HTTP (it binds loopback by
// convention), so no user credentials are needed.
func runTop(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	admin := fs.String("admin", "", "comma-separated broker admin addresses, e.g. 127.0.0.1:7101 (required)")
	interval := fs.Duration("interval", 2*time.Second, "delay between polls")
	polls := fs.Int("n", 1, "number of polls (0 = poll until interrupted)")
	_ = fs.Parse(args)
	if *admin == "" {
		die("top: -admin is required")
	}
	addrs := strings.Split(*admin, ",")
	client := &http.Client{Timeout: 5 * time.Second}
	for i := 0; *polls == 0 || i < *polls; i++ {
		if i > 0 {
			time.Sleep(*interval)
			fmt.Println()
		}
		for _, addr := range addrs {
			addr = strings.TrimSpace(addr)
			snap, err := fetchTop(client, addr)
			if err != nil {
				fmt.Printf("%s: %v\n", addr, err)
				continue
			}
			renderTop(addr, snap)
		}
	}
}

func fetchTop(client *http.Client, addr string) (*obs.TopSnapshot, error) {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	resp, err := client.Get(url + "/top")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /top: %s", resp.Status)
	}
	var snap obs.TopSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

func renderTop(addr string, s *obs.TopSnapshot) {
	fmt.Printf("%s  [%s]  window=%gs  %s\n", s.Domain, addr, s.WindowSec,
		time.Unix(0, s.TimeNS).UTC().Format("15:04:05Z"))
	for _, name := range obs.SortedKeys(s.Rates) {
		if rate := s.Rates[name]; rate > 0 {
			fmt.Printf("  %-42s %12.1f/s\n", name, rate)
		}
	}
	for _, name := range obs.SortedKeys(s.Gauges) {
		fmt.Printf("  %-42s %12g\n", name, s.Gauges[name])
	}
	for _, name := range obs.SortedKeys(s.Quantiles) {
		q := s.Quantiles[name]
		if q.Count == 0 {
			continue
		}
		fmt.Printf("  %-42s n=%-8d p50=%-10s p99=%-10s p999=%s\n",
			name, q.Count, fmtSeconds(q.P50), fmtSeconds(q.P99), fmtSeconds(q.P999))
	}
}

// fmtSeconds renders a latency quantile (in seconds) as a duration.
func fmtSeconds(v float64) string {
	return time.Duration(v * float64(time.Second)).Round(100 * time.Nanosecond).String()
}
