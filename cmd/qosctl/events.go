package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"e2eqos/internal/obs"
)

// runEvents reads a broker's flight-recorder log from disk and prints
// the matching events, oldest first. It needs filesystem access to the
// broker's events_dir (run it on the broker host or over a mounted
// copy); no credentials and no broker connection are involved.
func runEvents(args []string) {
	fs := flag.NewFlagSet("events", flag.ExitOnError)
	dir := fs.String("dir", "", "flight-recorder directory — the broker's events_dir (required)")
	verdict := fs.String("verdict", "", "keep only this verdict: granted, denied, error or rolled_back")
	domain := fs.String("domain", "", "keep only events recorded by this domain")
	kind := fs.String("kind", "", "keep only this event kind: reserve or tunnel-batch")
	trace := fs.String("trace", "", "keep only events under this trace id")
	minLatency := fs.Duration("min-latency", 0, "keep only events at least this slow, e.g. 5ms")
	lastN := fs.Int("n", 0, "print only the newest N matching events (0 = all)")
	jsonOut := fs.Bool("json", false, "emit one JSON object per event instead of text")
	spans := fs.Bool("spans", false, "render the per-hop timeline under each event")
	_ = fs.Parse(args)
	if *dir == "" {
		die("events: -dir is required")
	}
	filter := &obs.EventFilter{
		Verdict:     *verdict,
		Domain:      *domain,
		Kind:        *kind,
		TraceID:     *trace,
		MinDuration: *minLatency,
	}
	var matched []*obs.Event
	err := obs.ReadEvents(*dir, func(e *obs.Event) bool {
		if filter.Match(e) {
			ev := *e
			matched = append(matched, &ev)
		}
		return true
	})
	if err != nil {
		die("events: %v", err)
	}
	if *lastN > 0 && len(matched) > *lastN {
		matched = matched[len(matched)-*lastN:]
	}
	enc := json.NewEncoder(os.Stdout)
	for _, e := range matched {
		if *jsonOut {
			if err := enc.Encode(e); err != nil {
				die("events: %v", err)
			}
			continue
		}
		fmt.Println(formatEvent(e))
		if *spans && len(e.Spans) > 0 {
			fmt.Print(obs.RenderTimeline(e.TraceID, e.Spans))
		}
	}
}

// formatEvent renders one event as a single scannable line; fields a
// given event doesn't carry are omitted.
func formatEvent(e *obs.Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %-12s %-8s %s",
		time.Unix(0, e.TimeNS).UTC().Format("2006-01-02T15:04:05.000Z"),
		e.Kind, e.Verdict, time.Duration(e.DurationNS).Round(time.Microsecond))
	if e.Domain != "" {
		fmt.Fprintf(&b, " domain=%s", e.Domain)
	}
	if e.RARID != "" {
		fmt.Fprintf(&b, " rar=%s", e.RARID)
	}
	if e.User != "" {
		fmt.Fprintf(&b, " user=%s", e.User)
	}
	if e.TraceID != "" {
		fmt.Fprintf(&b, " trace=%s", e.TraceID)
	}
	if e.Ops > 0 {
		fmt.Fprintf(&b, " ops=%d", e.Ops)
	}
	if e.Retries > 0 {
		fmt.Fprintf(&b, " retries=%d", e.Retries)
	}
	if e.Bytes > 0 {
		fmt.Fprintf(&b, " bytes=%d", e.Bytes)
	}
	if !e.Sampled {
		b.WriteString(" forced")
	}
	if e.Reason != "" {
		fmt.Fprintf(&b, " reason=%q", e.Reason)
	}
	return b.String()
}
