// Command qosca is the PKI bootstrap tool for the daemons: it creates
// a certificate authority and issues broker and user certificates as
// PEM files.
//
//	qosca ca   -out-dir pki -org Grid -name RootCA
//	qosca cert -out-dir pki -ca pki/ca -org Grid -unit DomainA -name bb-a -host bb
//	qosca cert -out-dir pki -ca pki/ca -org Grid -unit DomainA -name Alice
//
// "ca" writes <dir>/ca.cert.pem and <dir>/ca.key.pem. "cert" reads
// those and writes <name>.cert.pem / <name>.key.pem.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"e2eqos/internal/identity"
	"e2eqos/internal/pki"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "ca":
		runCA(os.Args[2:])
	case "cert":
		runCert(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: qosca ca|cert [flags]")
	os.Exit(2)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "qosca:", err)
	os.Exit(1)
}

func runCA(args []string) {
	fs := flag.NewFlagSet("ca", flag.ExitOnError)
	outDir := fs.String("out-dir", "pki", "output directory")
	org := fs.String("org", "Grid", "organization")
	unit := fs.String("unit", "", "organizational unit")
	name := fs.String("name", "RootCA", "common name")
	_ = fs.Parse(args)

	ca, err := pki.NewCA(identity.NewDN(*org, *unit, *name))
	if err != nil {
		die(err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		die(err)
	}
	if err := pki.SaveCertFile(filepath.Join(*outDir, "ca.cert.pem"), ca.CertificateDER()); err != nil {
		die(err)
	}
	if err := pki.SaveKeyFile(filepath.Join(*outDir, "ca.key.pem"), ca.Key().Private); err != nil {
		die(err)
	}
	fmt.Printf("created CA %s in %s\n", ca.DN(), *outDir)
}

func runCert(args []string) {
	fs := flag.NewFlagSet("cert", flag.ExitOnError)
	outDir := fs.String("out-dir", "pki", "output directory")
	caPrefix := fs.String("ca", "pki/ca", "path prefix of ca.cert.pem/ca.key.pem (directory or prefix)")
	org := fs.String("org", "Grid", "organization")
	unit := fs.String("unit", "", "organizational unit")
	name := fs.String("name", "", "common name (required)")
	host := fs.String("host", "", "optional DNS SAN (brokers use \"bb\")")
	days := fs.Int("days", 365, "validity in days")
	_ = fs.Parse(args)
	if *name == "" {
		die(fmt.Errorf("cert: -name is required"))
	}

	caCertPath := *caPrefix + ".cert.pem"
	caKeyPath := *caPrefix + ".key.pem"
	if st, err := os.Stat(*caPrefix); err == nil && st.IsDir() {
		caCertPath = filepath.Join(*caPrefix, "ca.cert.pem")
		caKeyPath = filepath.Join(*caPrefix, "ca.key.pem")
	}
	caCert, err := pki.LoadCertFile(caCertPath)
	if err != nil {
		die(err)
	}
	caKey, err := pki.LoadKeyFile(caKeyPath, caCert.SubjectDN())
	if err != nil {
		die(err)
	}

	ca, err := pki.LoadCA(caCert, caKey)
	if err != nil {
		die(err)
	}

	dn := identity.NewDN(*org, *unit, *name)
	kp, err := identity.GenerateKeyPair(dn)
	if err != nil {
		die(err)
	}
	var hosts []string
	if *host != "" {
		hosts = []string{*host}
	}
	cert, err := ca.IssueIdentity(dn, kp.Public(), time.Duration(*days)*24*time.Hour, hosts...)
	if err != nil {
		die(err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		die(err)
	}
	certPath := filepath.Join(*outDir, *name+".cert.pem")
	keyPath := filepath.Join(*outDir, *name+".key.pem")
	if err := pki.SaveCertFile(certPath, cert.DER); err != nil {
		die(err)
	}
	if err := pki.SaveKeyFile(keyPath, kp.Private); err != nil {
		die(err)
	}
	fmt.Printf("issued %s -> %s, %s\n", dn, certPath, keyPath)
}
