// Benchmarks regenerating every figure-level experiment of the paper,
// plus ablations for the design choices DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// Latency-style results (figures 3/5, tunnels) are wall-clock costs of
// the full control-plane round trip over the in-memory transport with
// zero injected latency, i.e. pure protocol + crypto cost; the
// latency-scaled series are produced by cmd/experiments.
package e2eqos_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"e2eqos/internal/core"
	"e2eqos/internal/envelope"
	"e2eqos/internal/experiment"
	"e2eqos/internal/gara"
	"e2eqos/internal/identity"
	"e2eqos/internal/journal"
	"e2eqos/internal/pki"
	"e2eqos/internal/policy"
	"e2eqos/internal/resv"
	"e2eqos/internal/signalling"
	"e2eqos/internal/units"
)

// --- Figure 1: policy evaluation ------------------------------------------

func BenchmarkFig1PolicyEvaluation(b *testing.B) {
	req := &policy.Request{
		User:      policy.AliceDN,
		Bandwidth: 10 * units.Mbps,
		Available: 100 * units.Mbps,
		Time:      time.Date(2001, 8, 7, 12, 0, 0, 0, time.UTC),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if d := policy.Figure6PolicyA.Evaluate(req); !d.Granted() {
			b.Fatal("unexpected deny")
		}
	}
}

// --- Figures 3 & 5: signalling strategies ---------------------------------

// benchWorldTelemetry mirrors benchWorld with the full telemetry
// stack on: per-broker metrics plus a flight recorder sampling 1% of
// requests into a throwaway events directory — the deployment
// configuration the sampled sub-flow arm measures against the
// uninstrumented baseline.
func benchWorldTelemetry(b *testing.B, domains int) (*experiment.World, *experiment.User) {
	b.Helper()
	w, err := experiment.BuildWorld(experiment.WorldConfig{
		NumDomains: domains,
		Capacity:   units.Bandwidth(1000) * units.Gbps,
		EnableObs:  true,
		EventsDir:  b.TempDir(),
		SampleRate: 0.01,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(w.Close)
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(u.Close)
	warm := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: units.Mbps})
	if res, err := u.ReserveE2E(warm); err != nil || !res.Granted {
		b.Fatalf("warmup failed: %v %+v", err, res)
	}
	return w, u
}

// benchWorld builds a warmed N-domain world plus user for signalling
// benchmarks.
func benchWorld(b *testing.B, domains int, universalTrust bool) (*experiment.World, *experiment.User, *gara.NetworkAPI) {
	b.Helper()
	w, err := experiment.BuildWorld(experiment.WorldConfig{
		NumDomains:            domains,
		Capacity:              units.Bandwidth(1000) * units.Gbps,
		TrustUserCAEverywhere: universalTrust,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(w.Close)
	u, err := w.NewUser("alice", "", nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(u.Close)
	api := gara.NewNetworkAPI(w.Topo)
	warm := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: units.Mbps})
	if res, err := api.Reserve(u, warm, gara.Concurrent); err != nil || !res.Granted {
		// Fall back to hop-by-hop warmup when local mode is untrusted.
		if res2, err2 := u.ReserveE2E(warm); err2 != nil || !res2.Granted {
			b.Fatalf("warmup failed: %v %v", err, err2)
		}
	}
	return w, u, api
}

func benchStrategy(b *testing.B, domains int, strat gara.Strategy) {
	_, u, api := benchWorld(b, domains, strat != gara.HopByHop)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := u.NewSpec(experiment.SpecOptions{DestDomain: "Domain" + fmt.Sprint(domains-1), Bandwidth: units.Mbps})
		res, err := api.Reserve(u, spec, strat)
		if err != nil || !res.Granted {
			b.Fatalf("reserve failed: %v %+v", err, res)
		}
	}
}

func BenchmarkFig3SourceDomainSignalling(b *testing.B) {
	for _, n := range []int{3, 5, 8} {
		b.Run(fmt.Sprintf("sequential/domains=%d", n), func(b *testing.B) {
			benchStrategy(b, n, gara.Sequential)
		})
		b.Run(fmt.Sprintf("concurrent/domains=%d", n), func(b *testing.B) {
			benchStrategy(b, n, gara.Concurrent)
		})
	}
}

func BenchmarkFig5HopByHopSignalling(b *testing.B) {
	for _, n := range []int{3, 5, 8} {
		b.Run(fmt.Sprintf("domains=%d", n), func(b *testing.B) {
			benchStrategy(b, n, gara.HopByHop)
		})
	}
}

// --- Figure 4: misreservation attack --------------------------------------

func BenchmarkFig4Misreservation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results, _, err := experiment.RunFigure4(500 * time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		if results[0].AliceGoodput >= results[1].AliceGoodput {
			b.Fatal("attack did not degrade the honest flow")
		}
	}
}

// --- Figure 6: full-path policy enforcement -------------------------------

func BenchmarkFig6EndToEndPolicy(b *testing.B) {
	w, err := experiment.BuildWorld(experiment.WorldConfig{
		NumDomains: 3,
		Labels:     []string{"DomainA", "DomainB", "DomainC"},
		Capacity:   units.Bandwidth(1000) * units.Gbps,
		Policies: map[string]*policy.Policy{
			"DomainA": policy.Figure6PolicyA,
			"DomainB": policy.Figure6PolicyB,
			"DomainC": policy.Figure6PolicyC,
		},
		CPUs: map[string]int{"DomainC": 1 << 20},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(w.Close)
	alice, err := w.NewUser("Alice", "DomainA", []string{"network-reservation"}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(alice.Close)
	now := time.Now()
	noon := time.Date(now.Year(), now.Month(), now.Day(), 12, 0, 0, 0, time.UTC).AddDate(0, 0, 1)
	win := units.NewWindow(noon, time.Hour)
	cpuHandle, err := w.CPU["DomainC"].Reserve(alice.DN(), 1, units.NewWindow(noon, 24*time.Hour))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := alice.NewSpec(experiment.SpecOptions{
			DestDomain: "DomainC",
			Bandwidth:  10 * units.Mbps,
			Window:     win,
			Linked:     map[string]string{"cpu": cpuHandle},
		})
		res, err := alice.ReserveE2E(spec)
		if err != nil || !res.Granted {
			b.Fatalf("reserve failed: %v %+v", err, res)
		}
	}
}

// --- Figure 7: capability delegation chain --------------------------------

func BenchmarkFig7DelegationChain(b *testing.B) {
	for _, hops := range []int{3, 5, 8} {
		b.Run(fmt.Sprintf("hops=%d", hops), func(b *testing.B) {
			w, err := experiment.BuildProtocolWorld(hops, true)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Propagate(w.NewSpec()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- §6.4: transitive trust verification ----------------------------------

func BenchmarkTrustChainVerify(b *testing.B) {
	for _, hops := range []int{3, 5, 8} {
		b.Run(fmt.Sprintf("hops=%d", hops), func(b *testing.B) {
			w, err := experiment.BuildProtocolWorld(hops, false)
			if err != nil {
				b.Fatal(err)
			}
			// Build the final RAR once; benchmark only the
			// destination's verification.
			spec := w.NewSpec()
			env, err := w.User.BuildRAR(spec, w.Certs[0])
			if err != nil {
				b.Fatal(err)
			}
			peerDN := w.User.Key.DN
			peerCert := w.User.Cert.DER
			now := time.Now()
			for i := 0; i < hops-1; i++ {
				verified, err := w.Brokers[i].Verify(env, peerDN, peerCert, now)
				if err != nil {
					b.Fatal(err)
				}
				env, err = w.Brokers[i].Extend(env, peerCert, verified, w.Certs[i+1], nil)
				if err != nil {
					b.Fatal(err)
				}
				peerDN = w.Brokers[i].DN()
				peerCert = w.Certs[i].DER
			}
			dest := w.Brokers[hops-1]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dest.Verify(env, peerDN, peerCert, now); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Tunnels: per-flow signalling vs sub-flow allocation -------------------

func BenchmarkTunnelVsPerFlow(b *testing.B) {
	b.Run("per-flow-e2e/domains=5", func(b *testing.B) {
		_, u, _ := benchWorld(b, 5, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			spec := u.NewSpec(experiment.SpecOptions{DestDomain: "Domain4", Bandwidth: units.Mbps})
			res, err := u.ReserveE2E(spec)
			if err != nil || !res.Granted {
				b.Fatalf("reserve failed: %v %+v", err, res)
			}
		}
	})
	b.Run("tunnel-subflow/domains=5", func(b *testing.B) {
		w, u, _ := benchWorld(b, 5, false)
		spec := u.NewSpec(experiment.SpecOptions{
			DestDomain: "Domain4",
			Bandwidth:  units.Bandwidth(100) * units.Gbps,
			Tunnel:     true,
		})
		res, err := u.ReserveE2E(spec)
		if err != nil || !res.Granted {
			b.Fatalf("tunnel establishment failed: %v %+v", err, res)
		}
		src := w.BBs[w.SourceDomain()]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := src.AllocateTunnelFlow(spec.RARID, fmt.Sprintf("sub-%d", i), units.Mbps, u.DN()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSubFlowThroughput measures the tunnel sub-flow hot path:
// the per-RPC seed path (one MsgTunnelAlloc round trip per sub-flow)
// against MsgTunnelBatch at increasing batch sizes. b.N counts
// *allocations* in every arm — the batch arms step the loop by the
// batch size — so ns/op is directly comparable and allocations/sec is
// the inverse. BENCH_subflow.json records the measured numbers; the
// acceptance bar is >=5x allocations/sec at batch=64. The
// sampled=1pct arm repeats batch=64 with the full telemetry stack on
// (metrics registries plus a flight recorder at 1% sampling); the bar
// there is throughput within 5% of the uninstrumented batch=64 arm,
// recorded in BENCH_obs.json.
func BenchmarkSubFlowThroughput(b *testing.B) {
	establish := func(b *testing.B, u *experiment.User) *core.Spec {
		spec := u.NewSpec(experiment.SpecOptions{
			DestDomain: "Domain4",
			Bandwidth:  units.Bandwidth(100) * units.Gbps,
			Tunnel:     true,
		})
		res, err := u.ReserveE2E(spec)
		if err != nil || !res.Granted {
			b.Fatalf("tunnel establishment failed: %v %+v", err, res)
		}
		return spec
	}
	setup := func(b *testing.B) (*experiment.World, *experiment.User, *core.Spec) {
		w, u, _ := benchWorld(b, 5, false)
		return w, u, establish(b, u)
	}
	// Sub-flow churn is steady-state in deployment — flows come and go,
	// the live set stays bounded — so every window of allocations is
	// drained off-timer: the arms measure admission cost, not the cost
	// of growing one endpoint's shard maps without bound.
	const window = 4096
	drain := func(b *testing.B, w *experiment.World, u *experiment.User, rarID string, lo, hi int) {
		b.StopTimer()
		src := w.BBs[w.SourceDomain()]
		for start := lo; start < hi; start += 256 {
			end := start + 256
			if end > hi {
				end = hi
			}
			ops := make([]signalling.TunnelOp, 0, end-start)
			for j := start; j < end; j++ {
				ops = append(ops, signalling.TunnelOp{Action: signalling.OpRelease, SubFlowID: fmt.Sprintf("sub-%d", j)})
			}
			if _, err := src.TunnelBatch(rarID, ops, u.DN()); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
	}
	b.Run("per-rpc/domains=5", func(b *testing.B) {
		w, u, spec := setup(b)
		src := w.BBs[w.SourceDomain()]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%window == 0 {
				drain(b, w, u, spec.RARID, i-window, i)
			}
			if err := src.AllocateTunnelFlow(spec.RARID, fmt.Sprintf("sub-%d", i), units.Kbps, u.DN()); err != nil {
				b.Fatal(err)
			}
		}
	})
	runBatch := func(b *testing.B, w *experiment.World, u *experiment.User, spec *core.Spec, size int) {
		src := w.BBs[w.SourceDomain()]
		b.ResetTimer()
		for i := 0; i < b.N; i += size {
			if i > 0 && i%window == 0 {
				drain(b, w, u, spec.RARID, i-window, i)
			}
			n := size
			if rest := b.N - i; n > rest {
				n = rest
			}
			ops := make([]signalling.TunnelOp, n)
			for j := range ops {
				ops[j] = signalling.TunnelOp{
					Action:    signalling.OpAlloc,
					SubFlowID: fmt.Sprintf("sub-%d", i+j),
					Bandwidth: int64(units.Kbps),
				}
			}
			results, err := src.TunnelBatch(spec.RARID, ops, u.DN())
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range results {
				if !r.Granted {
					b.Fatalf("op %s denied: %s", r.SubFlowID, r.Reason)
				}
			}
		}
	}
	for _, size := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("batch=%d/domains=5", size), func(b *testing.B) {
			w, u, spec := setup(b)
			runBatch(b, w, u, spec, size)
		})
	}
	b.Run("batch=64/sampled=1pct/domains=5", func(b *testing.B) {
		w, u := benchWorldTelemetry(b, 5)
		runBatch(b, w, u, establish(b, u), 64)
	})
}

// --- Observability overhead ------------------------------------------------

// BenchmarkReserveChainTraced is the observability cost guard over the
// 5-domain grant hot path (the same chain as
// BenchmarkTunnelVsPerFlow/per-flow-e2e):
//
//	off     no registries, no trace id — must stay within noise of the
//	        pre-observability baseline (the nil-handle no-op design)
//	metrics per-broker registries collecting, tracing off
//	traced  registries plus a trace id, so every hop also records and
//	        returns a span
//
// BENCH_obs.json records the before/after numbers.
func BenchmarkReserveChainTraced(b *testing.B) {
	run := func(b *testing.B, enableObs, traced bool) {
		w, err := experiment.BuildWorld(experiment.WorldConfig{
			NumDomains: 5,
			Capacity:   units.Bandwidth(1000) * units.Gbps,
			EnableObs:  enableObs,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(w.Close)
		u, err := w.NewUser("alice", "", nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(u.Close)
		u.Trace = traced
		warm := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: units.Mbps})
		if res, err := u.ReserveE2E(warm); err != nil || !res.Granted {
			b.Fatalf("warmup failed: %v %+v", err, res)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			spec := u.NewSpec(experiment.SpecOptions{DestDomain: "Domain4", Bandwidth: units.Mbps})
			res, err := u.ReserveE2E(spec)
			if err != nil || !res.Granted {
				b.Fatalf("reserve failed: %v %+v", err, res)
			}
			if traced && len(res.Trace) != 5 {
				b.Fatalf("traced grant carries %d spans, want 5", len(res.Trace))
			}
		}
	}
	b.Run("off/domains=5", func(b *testing.B) { run(b, false, false) })
	b.Run("metrics/domains=5", func(b *testing.B) { run(b, true, false) })
	b.Run("traced/domains=5", func(b *testing.B) { run(b, true, true) })
}

// --- Concurrency: multiplexed signalling under parallel load ----------------

// BenchmarkConcurrentReserveChain measures end-to-end reserve
// throughput over a 4-domain chain with a modelled 2ms one-way hop
// latency, as the number of parallel requesters grows. All requesters
// share one user agent, so their calls multiplex over the same pooled
// connections. parallel=1 is the serialized baseline (one call in
// flight per connection — what the pre-mux client enforced
// structurally); the higher arms overlap the wire latency across
// in-flight calls and should scale until CPU-bound.
// BENCH_concurrency.json records the numbers.
func BenchmarkConcurrentReserveChain(b *testing.B) {
	for _, parallel := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallel=%d", parallel), func(b *testing.B) {
			w, err := experiment.BuildWorld(experiment.WorldConfig{
				NumDomains:  4,
				Capacity:    units.Bandwidth(1000) * units.Gbps,
				Latency:     2 * time.Millisecond,
				CallTimeout: 5 * time.Second,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(w.Close)
			u, err := w.NewUser("alice", "", nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(u.Close)
			warm := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: units.Mbps})
			if res, err := u.ReserveE2E(warm); err != nil || !res.Granted {
				b.Fatalf("warmup failed: %v %+v", err, res)
			}
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			errc := make(chan error, parallel)
			for g := 0; g < parallel; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: units.Mbps})
						res, err := u.ReserveE2E(spec)
						if err != nil || !res.Granted {
							errc <- fmt.Errorf("reserve failed: %v %+v", err, res)
							return
						}
					}
				}()
			}
			wg.Wait()
			select {
			case err := <-errc:
				b.Fatal(err)
			default:
			}
		})
	}
}

// --- Ablations -------------------------------------------------------------

// BenchmarkAblationEnvelopeCrypto isolates the cost the nested
// signatures add per hop: seal+open one layer versus plain JSON
// encode/decode of the same body.
func BenchmarkAblationEnvelopeCrypto(b *testing.B) {
	key, err := identity.GenerateKeyPair(identity.NewDN("Grid", "A", "bb"))
	if err != nil {
		b.Fatal(err)
	}
	body := envelope.Body{Request: []byte(`{"bw":"10Mb/s","dst":"DomainC"}`), NextHopDN: key.DN}
	b.Run("signed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			env, err := envelope.Seal(key, body)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := env.Open(key.Public()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unsigned-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			env, err := envelope.Seal(key, body)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := env.PeekBody(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationCapabilityDelegation measures one §6.5 delegation
// step (issue a new capability certificate to the next broker).
func BenchmarkAblationCapabilityDelegation(b *testing.B) {
	w, err := experiment.BuildProtocolWorld(2, true)
	if err != nil {
		b.Fatal(err)
	}
	cred := w.User.Credential
	next, err := identity.GenerateKeyPair(identity.NewDN("Grid", "X", "bb"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pki.Delegate(cred.Certificate, w.User.Key.DN, cred.Proxy.Private,
			next.DN, next.Public(), []string{"valid-for-rar:bench"}, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAdmissionControl measures the advance-reservation
// sweep as the table fills.
func BenchmarkAblationAdmissionControl(b *testing.B) {
	for _, preload := range []int{0, 100, 1000} {
		b.Run(fmt.Sprintf("existing=%d", preload), func(b *testing.B) {
			table, err := resv.NewTable("bench", units.Bandwidth(1<<40))
			if err != nil {
				b.Fatal(err)
			}
			base := time.Now()
			for i := 0; i < preload; i++ {
				if _, err := table.Admit(resv.AdmitRequest{
					Bandwidth: units.Mbps,
					Window:    units.NewWindow(base.Add(time.Duration(i)*time.Minute), time.Hour),
				}); err != nil {
					b.Fatal(err)
				}
			}
			win := units.NewWindow(base, time.Hour)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := table.Admit(resv.AdmitRequest{Bandwidth: units.Mbps, Window: win})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				_ = table.Cancel(r.Handle)
				b.StartTimer()
			}
		})
	}
}

// BenchmarkCoreRARConstruction measures RAR_U construction by the user
// agent (spec signing plus the first capability delegation).
func BenchmarkCoreRARConstruction(b *testing.B) {
	w, err := experiment.BuildProtocolWorld(2, true)
	if err != nil {
		b.Fatal(err)
	}
	spec := w.NewSpec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := w.User.BuildRAR(spec, w.Certs[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Durability: journaled admission overhead ------------------------------

// BenchmarkJournaledAdmit measures what the write-ahead journal adds to
// the admission hot path, per fsync policy, against the in-memory
// baseline (the numbers recorded in BENCH_journal.json). The clock sits
// a day past every admitted window so the automatic sweep keeps the
// table bounded at sweep-interval size — the steady state of a
// long-running broker, not an ever-growing table.
func BenchmarkJournaledAdmit(b *testing.B) {
	base := time.Date(2001, 8, 7, 9, 0, 0, 0, time.UTC)
	now := base.Add(24 * time.Hour)
	win := units.Window{Start: base, End: base.Add(time.Minute)}
	newBenchTable := func(b *testing.B) *resv.Table {
		tab, err := resv.NewTable("net-bench", 1000*units.Gbps)
		if err != nil {
			b.Fatal(err)
		}
		tab.SetClock(func() time.Time { return now })
		return tab
	}
	admitLoop := func(b *testing.B, tab *resv.Table) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tab.Admit(resv.AdmitRequest{Bandwidth: units.Mbps, Window: win}); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("memory", func(b *testing.B) {
		admitLoop(b, newBenchTable(b))
	})
	for _, pol := range []struct {
		name  string
		fsync journal.Policy
	}{
		{"batch", journal.FsyncBatch},
		{"always", journal.FsyncAlways},
		{"never", journal.FsyncNever},
	} {
		b.Run("journal-"+pol.name, func(b *testing.B) {
			tab := newBenchTable(b)
			j, _, err := journal.Open(b.TempDir(), journal.Options{Fsync: pol.fsync})
			if err != nil {
				b.Fatal(err)
			}
			jt := resv.NewJournaledTable(tab, j)
			admitLoop(b, jt.Table)
			b.StopTimer()
			if err := j.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// --- Replication: commit-gated admission overhead --------------------------

// BenchmarkReplicatedAdmit measures what the replica group adds to the
// broker-level admission path (the numbers recorded in
// BENCH_replication.json): a full end-to-end reserve over a two-domain
// chain, unreplicated vs a 3-replica group at each domain. Both arms
// journal with batch fsync; the replicated arm additionally streams
// every record to two followers and withholds the settlement until a
// majority acknowledged it. The commit wait overlaps the group-commit
// fsync window, so the target is well under 2x the unreplicated arm.
func BenchmarkReplicatedAdmit(b *testing.B) {
	run := func(b *testing.B, replicas int) {
		w, err := experiment.BuildWorld(experiment.WorldConfig{
			NumDomains:  2,
			Replicas:    replicas,
			Capacity:    1000 * units.Gbps,
			StateDir:    b.TempDir(),
			FsyncPolicy: "batch",
			CallTimeout: 5 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		u, err := w.NewUser("alice", "", nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		defer u.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			spec := u.NewSpec(experiment.SpecOptions{DestDomain: w.DestDomain(), Bandwidth: units.Mbps})
			res, err := u.ReserveE2E(spec)
			if err != nil || !res.Granted {
				b.Fatalf("reserve %d: %v %+v", i, err, res)
			}
		}
	}
	b.Run("unreplicated", func(b *testing.B) { run(b, 1) })
	b.Run("replicated-3", func(b *testing.B) { run(b, 3) })
}
